package nicsim

import (
	"testing"

	"clara/internal/interp"
	"clara/internal/isa"
	"clara/internal/lang"
	"clara/internal/niccc"
	"clara/internal/traffic"
)

const counterNF = `
map<u64,u64> flows[8192];
global u32 total;
void handle() {
	u64 k = (u64(pkt_ip_src()) << 32) | u64(pkt_ip_dst());
	u64 c = map_find(flows, k);
	map_insert(flows, k, c + 1);
	total += 1;
	pkt_send(0);
}
`

const bigCounterNF = `
map<u64,u64> flows[262144];
global u32 total;
void handle() {
	u64 k = (u64(pkt_ip_src()) << 32) | u64(pkt_ip_dst());
	u64 c = map_find(flows, k);
	map_insert(flows, k, c + 1);
	total += 1;
	pkt_send(0);
}
`

const csumNF = `
void handle() {
	pkt_set_ip_ttl(pkt_ip_ttl() - 1);
	pkt_csum_update();
	pkt_send(0);
}
`

func buildNF(t *testing.T, name, src string, mut func(*NF)) *Built {
	t.Helper()
	mod, err := lang.Compile(name, src)
	if err != nil {
		t.Fatal(err)
	}
	nf := &NF{Name: name, Mod: mod}
	if mut != nil {
		mut(nf)
	}
	b, err := nf.Build(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func genTraces(t *testing.T, b *Built, wl traffic.Spec, n int) *TraceSet {
	t.Helper()
	ts, err := GenTraces(b, wl, n, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func smallWL() traffic.Spec {
	wl := traffic.SmallFlows
	wl.NumFlows = 2048
	return wl
}

func TestParamsValidate(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.Regions[isa.EMEM].Latency = 1
	if err := bad.Validate(); err == nil {
		t.Error("accepted non-monotone hierarchy")
	}
	bad2 := DefaultParams()
	bad2.NumCores = 0
	if err := bad2.Validate(); err == nil {
		t.Error("accepted zero cores")
	}
}

func TestTraceGeneration(t *testing.T) {
	b := buildNF(t, "ctr", counterNF, nil)
	ts := genTraces(t, b, smallWL(), 500)
	if ts.Packets() != 500 {
		t.Fatalf("packets = %d", ts.Packets())
	}
	if ts.Sent != 500 || ts.Dropped != 0 {
		t.Errorf("sent/dropped = %d/%d", ts.Sent, ts.Dropped)
	}
	if ts.MemAccesses[isa.EMEM] == 0 {
		t.Error("no EMEM accesses recorded for default placement")
	}
	if ts.ComputeCycles == 0 {
		t.Error("no compute cycles recorded")
	}
	// Every packet has at least one event.
	for i := 0; i < ts.Packets(); i++ {
		if ts.Off[i+1] <= ts.Off[i] {
			t.Fatalf("packet %d has no events", i)
		}
	}
}

func TestThroughputScalesThenPlateaus(t *testing.T) {
	b := buildNF(t, "ctr", bigCounterNF, nil)
	wl := smallWL()
	wl.NumFlows = 60000
	ts := genTraces(t, b, wl, 6000)
	params := DefaultParams()
	rs, err := SweepCores(params, ts, []int{1, 4, 16, 60})
	if err != nil {
		t.Fatal(err)
	}
	if !(rs[1].ThroughputMpps > 3*rs[0].ThroughputMpps) {
		t.Errorf("4 cores (%f) should be >3x 1 core (%f)", rs[1].ThroughputMpps, rs[0].ThroughputMpps)
	}
	// At 60 cores the NF hits a ceiling: scaling stops being linear.
	if rs[3].ThroughputMpps > 55*rs[0].ThroughputMpps {
		t.Errorf("60-core throughput %f suspiciously linear vs 1-core %f",
			rs[3].ThroughputMpps, rs[0].ThroughputMpps)
	}
	if rs[3].ThroughputMpps > params.IngressMpps {
		t.Errorf("throughput %f exceeds the ingress ceiling %f", rs[3].ThroughputMpps, params.IngressMpps)
	}
	// The plateau is real: scaling 16 -> 60 cores gains far less than the
	// core ratio.
	if rs[3].ThroughputMpps > rs[2].ThroughputMpps*(60.0/16.0)*0.9 {
		t.Errorf("no plateau: 16 cores %f, 60 cores %f", rs[2].ThroughputMpps, rs[3].ThroughputMpps)
	}
}

func TestChecksumEngineSpeedsUp(t *testing.T) {
	naive := buildNF(t, "csum-sw", csumNF, nil)
	accel := buildNF(t, "csum-hw", csumNF, func(nf *NF) { nf.Accel.CsumEngine = true })
	wl := traffic.MediumMix
	params := DefaultParams()
	tsN := genTraces(t, naive, wl, 2000)
	tsA := genTraces(t, accel, wl, 2000)
	rN, err := Simulate(params, 8, tsN)
	if err != nil {
		t.Fatal(err)
	}
	rA, err := Simulate(params, 8, tsA)
	if err != nil {
		t.Fatal(err)
	}
	if rA.AvgLatencyUs >= rN.AvgLatencyUs {
		t.Errorf("engine csum latency %f !< software %f", rA.AvgLatencyUs, rN.AvgLatencyUs)
	}
	if rA.ThroughputMpps <= rN.ThroughputMpps {
		t.Errorf("engine csum throughput %f !> software %f", rA.ThroughputMpps, rN.ThroughputMpps)
	}
}

func TestPlacementChangesLatency(t *testing.T) {
	// Same NF, state in EMEM vs CLS: CLS must be faster (small flows defeat
	// the EMEM cache).
	wl := smallWL()
	const smallCounterNF = `
map<u64,u64> flows[2048];
global u32 total;
void handle() {
	u64 k = (u64(pkt_ip_src()) << 32) | u64(pkt_ip_dst());
	map_insert(flows, k, map_find(flows, k) + 1);
	total += 1;
	pkt_send(0);
}
`
	slow := buildNF(t, "ctr-emem", smallCounterNF, nil)
	fast := buildNF(t, "ctr-cls", smallCounterNF, func(nf *NF) {
		nf.Placement = Placement{"flows": isa.CLS, "total": isa.CLS}
	})
	params := DefaultParams()
	tsS := genTraces(t, slow, wl, 3000)
	tsF := genTraces(t, fast, wl, 3000)
	rS, _ := Simulate(params, 8, tsS)
	rF, _ := Simulate(params, 8, tsF)
	if rF.AvgLatencyUs >= rS.AvgLatencyUs {
		t.Errorf("CLS latency %f !< EMEM latency %f", rF.AvgLatencyUs, rS.AvgLatencyUs)
	}
}

func TestPlacementCapacityEnforced(t *testing.T) {
	mod, err := lang.Compile("big", `
map<u64,u64> huge[1000000];
void handle() { map_insert(huge, 1, 2); pkt_send(0); }
`)
	if err != nil {
		t.Fatal(err)
	}
	nf := &NF{Name: "big", Mod: mod, Placement: Placement{"huge": isa.CLS}}
	if _, err := nf.Build(DefaultParams()); err == nil {
		t.Error("17MB map fit in 64KB CLS")
	}
	nf.Placement = Placement{"huge": isa.LMEM}
	if _, err := nf.Build(DefaultParams()); err == nil {
		t.Error("LMEM placement accepted")
	}
}

func TestEMEMCacheFlowSizeSensitivity(t *testing.T) {
	// Few flows -> cache hits; many flows -> misses.
	big := buildNF(t, "ctr", bigCounterNF, nil)
	few := traffic.LargeFlows
	many := smallWL()
	many.NumFlows = 60000
	tsFew := genTraces(t, big, few, 3000)
	big2 := buildNF(t, "ctr", bigCounterNF, nil)
	tsMany := genTraces(t, big2, many, 3000)
	hitFew := float64(tsFew.EMEMHits) / float64(tsFew.EMEMHits+tsFew.EMEMMisses+1)
	hitMany := float64(tsMany.EMEMHits) / float64(tsMany.EMEMHits+tsMany.EMEMMisses+1)
	if hitFew < hitMany+0.2 {
		t.Errorf("large-flow hit rate %f should far exceed small-flow %f", hitFew, hitMany)
	}
}

func TestFlowCacheBypassesCores(t *testing.T) {
	wl := traffic.LargeFlows
	plain := buildNF(t, "ctr", counterNF, nil)
	cached := buildNF(t, "ctr-fc", counterNF, func(nf *NF) { nf.Accel.FlowCache = true })
	tsP := genTraces(t, plain, wl, 3000)
	tsC := genTraces(t, cached, wl, 3000)
	if tsC.FlowCacheHits == 0 {
		t.Fatal("no flow cache hits on a 64-flow workload")
	}
	params := DefaultParams()
	rP, _ := Simulate(params, 4, tsP)
	rC, _ := Simulate(params, 4, tsC)
	if rC.AvgLatencyUs >= rP.AvgLatencyUs/2 {
		t.Errorf("flow cache latency %f not well below %f", rC.AvgLatencyUs, rP.AvgLatencyUs)
	}
}

func TestCoalescingReducesAccesses(t *testing.T) {
	src := `
global u32 a;
global u32 b;
global u32 c;
void handle() {
	a += 1;
	b += u32(pkt_len());
	c ^= pkt_ip_src();
	pkt_send(0);
}
`
	plain := buildNF(t, "pack-no", src, nil)
	packed := buildNF(t, "pack-yes", src, func(nf *NF) {
		nf.Packs = [][]string{{"a", "b", "c"}}
	})
	wl := traffic.MediumMix
	tsP := genTraces(t, plain, wl, 1000)
	tsK := genTraces(t, packed, wl, 1000)
	if tsK.CoalesceMerged == 0 {
		t.Fatal("no merged accesses under the pack plan")
	}
	if tsK.MemAccesses[isa.EMEM] >= tsP.MemAccesses[isa.EMEM] {
		t.Errorf("packed EMEM accesses %d !< plain %d",
			tsK.MemAccesses[isa.EMEM], tsP.MemAccesses[isa.EMEM])
	}
	params := DefaultParams()
	rP, _ := Simulate(params, 8, tsP)
	rK, _ := Simulate(params, 8, tsK)
	if rK.AvgLatencyUs >= rP.AvgLatencyUs {
		t.Errorf("coalesced latency %f !< plain %f", rK.AvgLatencyUs, rP.AvgLatencyUs)
	}
}

func TestPackValidation(t *testing.T) {
	mod, _ := lang.Compile("p", `
global u32 a;
global u32 b[4];
void handle() { a += 1; pkt_send(0); }
`)
	nf := &NF{Name: "p", Mod: mod, Packs: [][]string{{"a", "b"}}}
	if _, err := nf.Build(DefaultParams()); err == nil {
		t.Error("array accepted into a scalar pack")
	}
	nf.Packs = [][]string{{"a"}, {"a"}}
	if _, err := nf.Build(DefaultParams()); err == nil {
		t.Error("duplicate pack membership accepted")
	}
}

func TestColocationInterference(t *testing.T) {
	// A memory-heavy NF colocated with another memory-heavy NF suffers;
	// its solo throughput on the same cores must be higher.
	wl := smallWL()
	a := buildNF(t, "ctrA", counterNF, nil)
	bb := buildNF(t, "ctrB", counterNF, nil)
	tsA := genTraces(t, a, wl, 3000)
	tsB := genTraces(t, bb, wl, 3000)
	params := DefaultParams()
	solo, err := Simulate(params, 30, tsA)
	if err != nil {
		t.Fatal(err)
	}
	co, err := SimulateColocation(params, []Part{{tsA, 30}, {tsB, 30}})
	if err != nil {
		t.Fatal(err)
	}
	if co[0].ThroughputMpps >= solo.ThroughputMpps {
		t.Errorf("colocated throughput %f !< solo %f", co[0].ThroughputMpps, solo.ThroughputMpps)
	}
}

func TestColocationValidation(t *testing.T) {
	b := buildNF(t, "ctr", counterNF, nil)
	ts := genTraces(t, b, smallWL(), 100)
	params := DefaultParams()
	if _, err := SimulateColocation(params, nil); err == nil {
		t.Error("empty parts accepted")
	}
	if _, err := SimulateColocation(params, []Part{{ts, 40}, {ts, 40}}); err == nil {
		t.Error("oversubscribed cores accepted")
	}
	if _, err := SimulateColocation(params, []Part{{ts, 0}}); err == nil {
		t.Error("zero-core part accepted")
	}
}

func TestKneeAndSaturationHelpers(t *testing.T) {
	rs := []Result{
		{Cores: 1, ThroughputMpps: 1, AvgLatencyUs: 1},
		{Cores: 8, ThroughputMpps: 7, AvgLatencyUs: 1.2},
		{Cores: 16, ThroughputMpps: 10, AvgLatencyUs: 3},
		{Cores: 32, ThroughputMpps: 10.4, AvgLatencyUs: 9},
	}
	if k := KneeCores(rs); k != 8 {
		t.Errorf("knee = %d, want 8", k)
	}
	if c := CoresToSaturate(rs, 0.95); c != 16 {
		t.Errorf("saturate = %d, want 16", c)
	}
}

func TestDeterministicSimulation(t *testing.T) {
	b1 := buildNF(t, "ctr", counterNF, nil)
	b2 := buildNF(t, "ctr", counterNF, nil)
	ts1 := genTraces(t, b1, smallWL(), 1000)
	ts2 := genTraces(t, b2, smallWL(), 1000)
	params := DefaultParams()
	r1, _ := Simulate(params, 12, ts1)
	r2, _ := Simulate(params, 12, ts2)
	if r1 != r2 {
		t.Errorf("nondeterministic: %+v vs %+v", r1, r2)
	}
}

func TestOfferedRateCapsThroughput(t *testing.T) {
	b := buildNF(t, "ctr", counterNF, nil)
	wl := smallWL()
	wl.RatePps = 2e6 // 2 Mpps offered
	ts := genTraces(t, b, wl, 2000)
	r, err := Simulate(DefaultParams(), 40, ts)
	if err != nil {
		t.Fatal(err)
	}
	if r.ThroughputMpps > 2.3 {
		t.Errorf("throughput %f exceeds the 2 Mpps offered load", r.ThroughputMpps)
	}
}

func TestSetupSeedsState(t *testing.T) {
	src := `
map<u64,u64> acl[1024];
void handle() {
	if (map_contains(acl, u64(pkt_ip_src()))) { pkt_drop(); return; }
	pkt_send(0);
}
`
	b := buildNF(t, "acl", src, func(nf *NF) {
		nf.Setup = func(m *interp.Machine) error {
			return m.MapSeed("acl", 0xC0A80000, 1)
		}
	})
	p := traffic.Packet{SrcIP: 0xC0A80000, OutPort: -2, Proto: traffic.ProtoTCP}
	if err := b.Machine.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	if !p.Dropped() {
		t.Error("seeded ACL entry not honored")
	}
}

var _ = niccc.AccelConfig{}
