// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated SmartNIC. Each experiment function
// returns a Table whose rows mirror what the paper plots or tabulates; the
// cmd/clarabench binary runs them all and EXPERIMENTS.md records
// paper-vs-measured.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"clara/internal/click"
	"clara/internal/core"
	"clara/internal/nicsim"
	"clara/internal/synth"
	"clara/internal/traffic"
)

// Config controls experiment scale.
type Config struct {
	Params nicsim.Params
	Seed   int64
	// Quick shrinks training sets and packet counts so the full suite runs
	// in seconds (tests); the bench uses full scale.
	Quick bool
}

// DefaultConfig returns the full-scale configuration.
func DefaultConfig() Config {
	return Config{Params: nicsim.DefaultParams(), Seed: 42}
}

// Table is one regenerated table/figure.
type Table struct {
	ID     string // e.g. "figure8"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Notef appends a formatted note.
func (t *Table) Notef(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			wdt := 0
			if i < len(widths) {
				wdt = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", wdt, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	for _, r := range t.Rows {
		printRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Context lazily shares expensive trained components across experiments.
type Context struct {
	Cfg Config

	pred     *core.Predictor
	algoID   *core.AlgoIdentifier
	scaleout *core.ScaleoutModel
}

// NewContext returns a context for cfg.
func NewContext(cfg Config) *Context {
	if cfg.Params.NumCores == 0 {
		cfg.Params = nicsim.DefaultParams()
	}
	return &Context{Cfg: cfg}
}

// f formats a float compactly.
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Predictor trains (once) the §3 instruction predictor on a corpus profile
// measured from the element library.
func (c *Context) Predictor() (*core.Predictor, error) {
	if c.pred != nil {
		return c.pred, nil
	}
	mods, err := click.Modules(click.Table2Order)
	if err != nil {
		return nil, err
	}
	cfg := core.PredictorConfig{CompactVocab: true, Seed: c.Cfg.Seed, TrainPrograms: 320}
	if c.Cfg.Quick {
		cfg.TrainPrograms = 60
		cfg.Epochs = 8
		cfg.Hidden = 18
	}
	p, err := core.TrainPredictor(cfg, core.CorpusProfile(mods))
	if err != nil {
		return nil, err
	}
	c.pred = p
	return p, nil
}

// AlgoID trains (once) the §4.1 classifier.
func (c *Context) AlgoID() (*core.AlgoIdentifier, error) {
	if c.algoID != nil {
		return c.algoID, nil
	}
	n := 60
	if c.Cfg.Quick {
		n = 16
	}
	id, err := core.TrainAlgoIdentifier(algoTrainCorpus(n, c.Cfg.Seed), 48, c.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	c.algoID = id
	return id, nil
}

// Scaleout trains (once) the §4.2 cost model.
func (c *Context) Scaleout() (*core.ScaleoutModel, error) {
	if c.scaleout != nil {
		return c.scaleout, nil
	}
	pred, err := c.Predictor()
	if err != nil {
		return nil, err
	}
	cfg := core.ScaleoutConfig{Params: c.Cfg.Params, Seed: c.Cfg.Seed}
	if c.Cfg.Quick {
		cfg.TrainPrograms = 10
		cfg.PacketsPerTrace = 500
		cfg.CoreGrid = []int{2, 8, 16, 32, 48, 60}
	}
	sm, err := core.TrainScaleout(cfg, pred)
	if err != nil {
		return nil, err
	}
	c.scaleout = sm
	return sm, nil
}

// packets scales a packet count down in quick mode.
func (c *Context) packets(full int) int {
	if c.Cfg.Quick {
		n := full / 5
		if n < 300 {
			n = 300
		}
		return n
	}
	return full
}

// elementNF builds a nicsim.NF for a library element with porting options
// applied by mut.
func elementNF(name string, mut func(*nicsim.NF)) *nicsim.NF {
	e := click.Get(name)
	if e == nil {
		panic("experiments: unknown element " + name)
	}
	nf := &nicsim.NF{
		Name:     name,
		Mod:      e.MustModule(),
		Setup:    e.Setup,
		LPMTable: e.Routes,
	}
	if mut != nil {
		mut(nf)
	}
	return nf
}

// runNF builds, traces, and simulates one NF configuration.
func runNF(params nicsim.Params, nf *nicsim.NF, wl traffic.Spec, packets, cores int) (nicsim.Result, *nicsim.TraceSet, error) {
	b, err := nf.Build(params)
	if err != nil {
		return nicsim.Result{}, nil, err
	}
	ts, err := nicsim.GenTraces(b, wl, packets, params)
	if err != nil {
		return nicsim.Result{}, nil, err
	}
	r, err := nicsim.Simulate(params, cores, ts)
	return r, ts, err
}

// profileSetup extracts the element's host-profiling setup.
func profileSetup(name string) core.ProfileSetup {
	e := click.Get(name)
	return core.ProfileSetup{Setup: e.Setup, LPMTable: e.Routes}
}

// algoTrainCorpus builds the training corpus for algorithm identification:
// n synthesized variants per class, plus the library's non-CRC/LPM
// elements as extra real negatives.
func algoTrainCorpus(n int, seed int64) []synth.LabeledProgram {
	corpus := synth.AlgoCorpus(n, seed)
	for _, name := range []string{"tcpack", "udpipencap", "forcetcp", "aggcounter", "timefilter"} {
		corpus = append(corpus, synth.LabeledProgram{
			Name: "click_" + name, Src: click.Get(name).Src, Label: synth.LabelNone,
		})
	}
	return corpus
}
