package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clara/internal/analysis"
	"clara/internal/click"
	"clara/internal/interp"
	"clara/internal/ir"
	"clara/internal/lang"
	"clara/internal/traffic"
)

// lowerSrc parses and lowers NFC source for the interprocedural tests.
func lowerSrc(t *testing.T, name, src string) *ir.Module {
	t.Helper()
	file, err := lang.Parse(name, src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	m, err := lang.Lower(file)
	if err != nil {
		t.Fatalf("lower %s: %v", name, err)
	}
	return m
}

// ---------------------------------------------------------------------------
// Call graph.

// buildMultiFn hand-builds a module exercising shapes the frontend never
// emits (it inlines): a call chain, a mutually recursive pair, and a
// self-recursive function.
//
//	handle -> chain -> leaf
//	handle -> mutA <-> mutB
//	handle -> selfrec -> selfrec
func buildMultiFn(t *testing.T) *ir.Module {
	t.Helper()
	u32 := ir.U32
	param := []ir.Param{{Name: "x", Ty: u32}}

	leaf := ir.NewBuilder("leaf", param, u32)
	v := ir.ParamVal(0, u32)
	leaf.Ret(&v)

	chain := ir.NewBuilder("chain", param, u32)
	cv := chain.Call("leaf", "", u32, ir.ParamVal(0, u32))
	chain.Ret(&cv)

	mutA := ir.NewBuilder("mutA", param, u32)
	av := mutA.Call("mutB", "", u32, ir.ParamVal(0, u32))
	mutA.Ret(&av)

	mutB := ir.NewBuilder("mutB", param, u32)
	bodyB := mutB.Current()
	_ = bodyB
	cond := mutB.ICmp(ir.PredUGT, ir.ParamVal(0, u32), ir.ConstVal(0, u32))
	thenB := mutB.NewBlock("then")
	elseB := mutB.NewBlock("else")
	mutB.SetBlock(mutB.F.Blocks[0])
	mutB.CondBr(cond, thenB, elseB)
	mutB.SetBlock(thenB)
	dec := mutB.Bin(ir.OpSub, u32, ir.ParamVal(0, u32), ir.ConstVal(1, u32))
	rv := mutB.Call("mutA", "", u32, dec)
	mutB.Ret(&rv)
	mutB.SetBlock(elseB)
	zero := ir.ConstVal(0, u32)
	mutB.Ret(&zero)

	selfrec := ir.NewBuilder("selfrec", param, u32)
	sv := selfrec.Call("selfrec", "", u32, ir.ParamVal(0, u32))
	selfrec.Ret(&sv)

	h := ir.NewBuilder(ir.HandlerName, nil, ir.Void)
	pl := h.Call("pkt_payload_len", "", u32)
	h.Call("chain", "", u32, pl)
	h.Call("mutA", "", u32, ir.ConstVal(3, u32))
	h.Call("selfrec", "", u32, pl)
	h.Ret(nil)

	m := &ir.Module{Name: "multifn", Funcs: []*ir.Func{
		h.F, chain.F, leaf.F, mutA.F, mutB.F, selfrec.F,
	}}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func TestCallGraphSCC(t *testing.T) {
	m := buildMultiFn(t)
	cg := analysis.BuildCallGraph(m)

	idx := func(name string) int {
		i := cg.Node(name)
		if i < 0 {
			t.Fatalf("missing node %q", name)
		}
		return i
	}
	// Reverse topological numbering: callees' SCCs before callers'.
	if !(cg.SCCOf(idx("leaf")) < cg.SCCOf(idx("chain"))) {
		t.Errorf("leaf SCC %d should precede chain SCC %d", cg.SCCOf(idx("leaf")), cg.SCCOf(idx("chain")))
	}
	if !(cg.SCCOf(idx("chain")) < cg.SCCOf(idx("handle"))) {
		t.Errorf("chain SCC should precede handle SCC")
	}
	if cg.SCCOf(idx("mutA")) != cg.SCCOf(idx("mutB")) {
		t.Errorf("mutually recursive pair split across SCCs")
	}
	for _, n := range []string{"mutA", "mutB", "selfrec"} {
		if !cg.Recursive(idx(n)) {
			t.Errorf("%s not marked recursive", n)
		}
	}
	for _, n := range []string{"handle", "chain", "leaf"} {
		if cg.Recursive(idx(n)) {
			t.Errorf("%s wrongly marked recursive", n)
		}
	}
	// Intrinsic calls are leaves, not nodes.
	if cg.Node("pkt_payload_len") != -1 {
		t.Errorf("intrinsic appeared as a call-graph node")
	}
}

func TestCallGraphEmptyAndSingle(t *testing.T) {
	// An empty function body (just a return) must survive every pass.
	h := ir.NewBuilder(ir.HandlerName, nil, ir.Void)
	h.Ret(nil)
	m := &ir.Module{Name: "empty", Funcs: []*ir.Func{h.F}}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	cg := analysis.BuildCallGraph(m)
	if len(cg.SCCs()) != 1 {
		t.Fatalf("one function should give one SCC, got %d", len(cg.SCCs()))
	}
	analysis.ComputeTaint(cg)
	analysis.ComputeSCCP(cg)
	analysis.ComputeFreq(cg)
	sp := analysis.ComputeStateProfile(m)
	if len(sp.Loops) != 0 || len(sp.Structs) != 0 {
		t.Errorf("empty module produced a non-empty profile: %+v", sp)
	}
	if sp.HeaderOnlyShare() != 1 {
		t.Errorf("stateless element should be fully header-only, got %v", sp.HeaderOnlyShare())
	}
}

// ---------------------------------------------------------------------------
// Taint.

func TestTaintClassifiesLoops(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		payload bool
		cause   string
	}{
		{"payload_bound", `void handle() {
	for (u32 i = 0; i < pkt_payload_len(); i += 1) { }
	pkt_send(0);
}`, true, "pkt_payload_len"},
		{"header_bound", `void handle() {
	for (u32 i = 0; i < pkt_ip_hl(); i += 1) { }
	pkt_send(0);
}`, false, "pkt_ip_hl"},
		{"payload_byte_bound", `void handle() {
	u32 n = u32(pkt_payload(0));
	for (u32 i = 0; i < n; i += 1) { }
	pkt_send(0);
}`, true, "pkt_payload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := lowerSrc(t, tc.name, tc.src)
			sp := analysis.ComputeStateProfile(m)
			if len(sp.Loops) != 1 {
				t.Fatalf("want 1 loop, got %d: %+v", len(sp.Loops), sp.Loops)
			}
			l := sp.Loops[0]
			if l.PayloadDependent != tc.payload {
				t.Errorf("PayloadDependent = %v, want %v (%+v)", l.PayloadDependent, tc.payload, l)
			}
			if !strings.Contains(l.Cause, tc.cause) {
				t.Errorf("cause %q does not name source %q", l.Cause, tc.cause)
			}
		})
	}
}

func TestTaintClassifiesStateKeys(t *testing.T) {
	src := `map<u64,u64> flows[1024];
map<u64,u64> deep[1024];
global u32 stash;

void handle() {
	u64 hkey = (u64(pkt_ip_src()) << 32) | u64(pkt_ip_dst());
	map_insert(flows, hkey, 1);
	stash = u32(pkt_payload(0));
	u64 pkey = u64(stash);
	map_insert(deep, pkey, 1);
	pkt_send(0);
}`
	m := lowerSrc(t, "keyclass", src)
	sp := analysis.ComputeStateProfile(m)
	byName := map[string]analysis.StructProfile{}
	for _, s := range sp.Structs {
		byName[s.Name] = s
	}
	if s := byName["flows"]; s.PayloadKeyed {
		t.Errorf("header-keyed map classified payload-keyed: %+v", s)
	}
	if s := byName["deep"]; !s.PayloadKeyed {
		// The payload byte launders through the `stash` global; the
		// module-level stored-value taint must carry it.
		t.Errorf("payload-keyed map (via global laundering) classified header-only: %+v", s)
	}
	if s := byName["deep"]; !strings.Contains(s.Cause, "pkt_payload") {
		t.Errorf("cause %q does not name pkt_payload", s.Cause)
	}
	if sp.HeaderOnlyShare() >= 1 {
		t.Errorf("HeaderOnlyShare should drop below 1 with a payload-keyed map, got %v", sp.HeaderOnlyShare())
	}
}

func TestTaintInterprocedural(t *testing.T) {
	// Hand-built: handle passes a payload-derived value through a helper
	// and bounds a loop with the result. The classification must cross
	// the call (param taint in, return taint out) — including through the
	// self-recursive echo helper.
	u32 := ir.U32
	id := ir.NewBuilder("id", []ir.Param{{Name: "x", Ty: u32}}, u32)
	v := ir.ParamVal(0, u32)
	id.Ret(&v)

	// Self-recursive with a base case that returns the parameter: the
	// payload taint must survive the SCC fixpoint through both paths.
	echo := ir.NewBuilder("echo", []ir.Param{{Name: "x", Ty: u32}}, u32)
	ec := echo.ICmp(ir.PredUGT, ir.ParamVal(0, u32), ir.ConstVal(100, u32))
	eRec := echo.NewBlock("rec")
	eBase := echo.NewBlock("base")
	echo.SetBlock(echo.F.Blocks[0])
	echo.CondBr(ec, eRec, eBase)
	echo.SetBlock(eRec)
	ev := echo.Call("echo", "", u32, ir.ParamVal(0, u32))
	echo.Ret(&ev)
	echo.SetBlock(eBase)
	ebv := ir.ParamVal(0, u32)
	echo.Ret(&ebv)

	h := ir.NewBuilder(ir.HandlerName, nil, ir.Void)
	slot := h.NewSlot()
	pl := h.Call("pkt_payload_len", "", u32)
	bound := h.Call("id", "", u32, pl)
	h.Call("echo", "", u32, pl)
	h.LStore(slot, ir.ConstVal(0, u32))
	head := h.NewBlock("head")
	body := h.NewBlock("body")
	exit := h.NewBlock("exit")
	h.SetBlock(h.F.Blocks[0])
	h.Br(head)
	h.SetBlock(head)
	iv := h.LLoad(slot, u32)
	cond := h.ICmp(ir.PredULT, iv, bound)
	h.CondBr(cond, body, exit)
	h.SetBlock(body)
	iv2 := h.LLoad(slot, u32)
	h.LStore(slot, h.Bin(ir.OpAdd, u32, iv2, ir.ConstVal(1, u32)))
	h.Br(head)
	h.SetBlock(exit)
	h.Ret(nil)

	m := &ir.Module{Name: "interproc", Funcs: []*ir.Func{h.F, id.F, echo.F}}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	cg := analysis.BuildCallGraph(m)
	ti := analysis.ComputeTaint(cg)
	lt, ok := ti.LoopClass(ir.HandlerName, head.Index)
	if !ok {
		t.Fatalf("loop at head b%d not classified; loops: %+v", head.Index, ti.Loops)
	}
	if !lt.PayloadDependent() {
		t.Errorf("loop bounded by id(pkt_payload_len()) should be payload-dependent: %+v", lt)
	}
	// The self-recursive echo must converge with a payload-tainted return.
	if tt := ti.ValueTaint(ir.HandlerName, 2); !tt.Has(analysis.TaintPayload) {
		t.Errorf("echo(payload) return taint = %v, want payload", tt)
	}
}

// ---------------------------------------------------------------------------
// SCCP and simplification.

func TestSCCPConstBranchAndDeadCode(t *testing.T) {
	src := `global u32 hits;

void handle() {
	u32 mode = 2;
	u32 twice = mode * 3;
	if (twice == 6) {
		hits = hits + 1;
	} else {
		hits = hits + 100;
	}
	pkt_send(0);
}`
	ds, err := analysis.LintSource("constbr", src, analysis.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var haveConst, haveDead bool
	for _, d := range ds {
		switch d.Rule {
		case analysis.RuleConstBranch:
			haveConst = true
			if !strings.Contains(d.Msg, "always true") {
				t.Errorf("const-branch msg should state the folded truth: %q", d.Msg)
			}
		case analysis.RuleDeadCode:
			haveDead = true
		}
	}
	if !haveConst || !haveDead {
		t.Fatalf("want const-branch + dead-code, got %v", ds)
	}

	m := lowerSrc(t, "constbr", src)
	before := len(m.Handler().Blocks)
	sm, changes := analysis.SimplifyModule(m)
	if changes == 0 {
		t.Fatal("SimplifyModule reported no changes on a constant branch")
	}
	if err := ir.Verify(sm); err != nil {
		t.Fatalf("simplified module fails verification: %v", err)
	}
	if got := len(sm.Handler().Blocks); got >= before {
		t.Errorf("dead branch not removed: %d blocks before, %d after", before, got)
	}
	for _, b := range sm.Handler().Blocks {
		if term := b.Terminator(); term != nil && term.Op == ir.OpCondBr {
			if term.Args[0].Kind == ir.VConst {
				t.Errorf("constant CondBr survived simplification: %v", term)
			}
		}
	}
	// The original module must be untouched.
	if len(m.Handler().Blocks) != before {
		t.Errorf("SimplifyModule mutated its input")
	}
}

func TestSCCPInterproceduralConst(t *testing.T) {
	// A helper that returns a constant lets the caller's branch fold.
	u32 := ir.U32
	five := ir.NewBuilder("five", nil, u32)
	c := ir.ConstVal(5, u32)
	five.Ret(&c)

	h := ir.NewBuilder(ir.HandlerName, nil, ir.Void)
	v := h.Call("five", "", u32)
	cond := h.ICmp(ir.PredEQ, v, ir.ConstVal(5, u32))
	thenB := h.NewBlock("then")
	elseB := h.NewBlock("else")
	h.SetBlock(h.F.Blocks[0])
	h.CondBr(cond, thenB, elseB)
	h.SetBlock(thenB)
	h.Ret(nil)
	h.SetBlock(elseB)
	h.Ret(nil)

	m := &ir.Module{Name: "ipconst", Funcs: []*ir.Func{h.F, five.F}}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	si := analysis.ComputeSCCP(analysis.BuildCallGraph(m))
	if v, ok := si.ValCell(ir.HandlerName, 0); !ok || v != 5 {
		t.Errorf("five() call did not fold to 5 across the call: (%d, %v)", v, ok)
	}
	cbs := si.ConstBranches()
	if len(cbs) != 1 || cbs[0].Cond != 1 {
		t.Fatalf("want one always-true branch, got %+v", cbs)
	}
}

// TestSimplifyEquivalence runs every library element's original and
// simplified modules over the same traffic and demands identical
// externally visible behavior: the exact sequence of framework API calls
// and stateful accesses, per packet.
func TestSimplifyEquivalence(t *testing.T) {
	const packets = 96
	for _, e := range click.Library() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			orig := e.MustModule()
			simp, _ := analysis.SimplifyModule(orig)
			if err := ir.Verify(simp); err != nil {
				t.Fatalf("simplified %s fails verification: %v", e.Name, err)
			}
			run := func(mod *ir.Module) []string {
				m, err := interp.New(mod, interp.Config{Mode: interp.NICMap, LPMTable: e.Routes})
				if err != nil {
					t.Fatal(err)
				}
				if e.Setup != nil {
					if err := e.Setup(m); err != nil {
						t.Fatal(err)
					}
				}
				var events []string
				m.SetHooks(interp.Hooks{
					OnState: func(global string, store bool, addr uint64, block int) {
						events = append(events, "state", global, boolStr(store), uintStr(addr))
					},
					OnAPI: func(name, global string, probes int, addr uint64, block int) {
						events = append(events, "api", name, global, uintStr(addr))
					},
				})
				gen, err := traffic.NewGenerator(traffic.MediumMix)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < packets; i++ {
					p := gen.Next()
					if err := m.RunPacket(&p); err != nil {
						t.Fatalf("packet %d: %v", i, err)
					}
				}
				return events
			}
			a, b := run(orig), run(simp)
			if len(a) != len(b) {
				t.Fatalf("event count diverged: %d orig vs %d simplified", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("event %d diverged: %q vs %q", i, a[i], b[i])
				}
			}
		})
	}
}

func boolStr(b bool) string {
	if b {
		return "w"
	}
	return "r"
}

func uintStr(v uint64) string {
	const digits = "0123456789"
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return string(buf[i:])
}

// ---------------------------------------------------------------------------
// Frequency estimation.

func TestFreqWeightsLoopsAndBranches(t *testing.T) {
	src := `global u32 once;
map<u64,u64> hot[256];
map<u64,u64> cold[256];

void handle() {
	once = once + 1;
	for (u32 i = 0; i < 8; i += 1) {
		map_insert(hot, u64(i), 1);
	}
	if (pkt_len() > 64) {
		map_insert(cold, 1, 1);
	}
	pkt_send(0);
}`
	m := lowerSrc(t, "freq", src)
	sp := analysis.ComputeStateProfile(m)
	w := sp.GlobalFreq()
	// The loop body runs ~8x per packet; the scalar twice (load+store);
	// the branch-guarded map ~0.5x.
	if !(w["hot"] > w["once"] && w["once"] > w["cold"]) {
		t.Errorf("weight order wrong: hot=%v once=%v cold=%v", w["hot"], w["once"], w["cold"])
	}
	if w["hot"] < 6 || w["hot"] > 10 {
		t.Errorf("loop-scaled weight %v, want ~8", w["hot"])
	}
	if w["cold"] < 0.25 || w["cold"] > 0.75 {
		t.Errorf("branch-split weight %v, want ~0.5", w["cold"])
	}
}

func TestFreqInfeasibleBranchPruned(t *testing.T) {
	src := `map<u64,u64> never[256];

void handle() {
	u32 x = 3;
	if (x > 7) {
		map_insert(never, 1, 1);
	}
	pkt_send(0);
}`
	m := lowerSrc(t, "infeasible", src)
	sp := analysis.ComputeStateProfile(m)
	for _, s := range sp.Structs {
		if s.Name == "never" && s.Weight != 0 {
			t.Errorf("infeasible branch still carries weight %v", s.Weight)
		}
	}
}

func TestFreqInterprocedural(t *testing.T) {
	// A helper called from a 4-iteration loop must inherit frequency 4.
	u32 := ir.U32
	help := ir.NewBuilder("bump", nil, ir.Void)
	hv := help.GLoad("ctr", u32, nil)
	help.GStore("ctr", help.Bin(ir.OpAdd, u32, hv, ir.ConstVal(1, u32)), nil)
	help.Ret(nil)

	h := ir.NewBuilder(ir.HandlerName, nil, ir.Void)
	slot := h.NewSlot()
	h.LStore(slot, ir.ConstVal(0, u32))
	head := h.NewBlock("head")
	body := h.NewBlock("body")
	exit := h.NewBlock("exit")
	h.SetBlock(h.F.Blocks[0])
	h.Br(head)
	h.SetBlock(head)
	iv := h.LLoad(slot, u32)
	cond := h.ICmp(ir.PredULT, iv, ir.ConstVal(4, u32))
	h.CondBr(cond, body, exit)
	h.SetBlock(body)
	h.Call("bump", "", ir.Void)
	iv2 := h.LLoad(slot, u32)
	h.LStore(slot, h.Bin(ir.OpAdd, u32, iv2, ir.ConstVal(1, u32)))
	h.Br(head)
	h.SetBlock(exit)
	h.Ret(nil)

	m := &ir.Module{
		Name:    "ipfreq",
		Globals: []*ir.Global{{Name: "ctr", Kind: ir.GScalar, Elem: u32}},
		Funcs:   []*ir.Func{h.F, help.F},
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	fi := analysis.ComputeFreq(analysis.BuildCallGraph(m))
	bump := fi.CG.Node("bump")
	if fi.FnFreq[bump] < 3.5 || fi.FnFreq[bump] > 4.5 {
		t.Errorf("helper in a 4-loop has FnFreq %v, want ~4", fi.FnFreq[bump])
	}
	// ctr: load+store per bump call → ~8 accesses per packet.
	if w := fi.GlobalWeight["ctr"]; w < 7 || w > 9 {
		t.Errorf("ctr weight %v, want ~8", w)
	}
}

// ---------------------------------------------------------------------------
// Golden fixtures over the paper's 17 elements: every loop and state
// access classified (taint_*.golden), every structure weighted
// (freq_*.golden).

func TestStateProfileGoldens(t *testing.T) {
	for _, name := range click.Table2Order {
		name := name
		t.Run(name, func(t *testing.T) {
			e := click.Get(name)
			if e == nil {
				t.Fatalf("element %q missing", name)
			}
			sp := analysis.ComputeStateProfile(e.MustModule())
			checkGolden(t, filepath.Join("testdata", "taint_"+name+".golden"), sp.RenderTaint())
			checkGolden(t, filepath.Join("testdata", "freq_"+name+".golden"), sp.RenderFreq())
		})
	}
}

func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run `make update-golden`): %v", err)
	}
	if string(want) != got {
		t.Errorf("output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// ---------------------------------------------------------------------------
// Fuzzing.

// FuzzTaint drives the interprocedural engine (call graph, taint, SCCP,
// frequency, simplify) on arbitrary source. Contract: no panics, no
// hangs, deterministic classification across repeated runs, and the
// simplified module always verifies.
func FuzzTaint(f *testing.F) {
	for _, e := range click.Library() {
		f.Add(e.Src)
	}
	f.Add("void handle() { for (u32 i = 0; i < pkt_payload_len(); i += 1) {} pkt_send(0); }")
	f.Add("global u32 s;\nvoid handle() { s = u32(pkt_payload(0)); if (s > 3) { pkt_drop(); return; } pkt_send(0); }")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		file, err := lang.Parse("fuzz", src)
		if err != nil {
			return
		}
		m, err := lang.Lower(file)
		if err != nil {
			return
		}
		sp1 := analysis.ComputeStateProfile(m)
		sp2 := analysis.ComputeStateProfile(m)
		if sp1.Render() != sp2.Render() {
			t.Fatalf("profile not deterministic:\n%s\nvs\n%s", sp1.Render(), sp2.Render())
		}
		if s := sp1.HeaderOnlyShare(); s < 0 || s > 1 {
			t.Fatalf("HeaderOnlyShare out of range: %v", s)
		}
		sm, _ := analysis.SimplifyModule(m)
		if err := ir.Verify(sm); err != nil {
			t.Fatalf("simplified module fails verify: %v\n%s", err, sm)
		}
	})
}
