package main

import (
	"strings"
	"testing"
	"time"
)

// simFlags returns a valid -simulate flag set to mutate per case.
func simFlags() cliFlags {
	return cliFlags{
		workload: "mix", simulate: true,
		scenario: "zipf", policy: "insight",
		rounds: 96, simSeed: 7,
	}
}

func TestCheckFlagsSimulate(t *testing.T) {
	cases := []struct {
		name    string
		mut     func(*cliFlags)
		wantErr string // empty = accept
	}{
		{"default simulate", func(f *cliFlags) {}, ""},
		{"simulate with nf", func(f *cliFlags) { f.nf = "mazunat" }, ""},
		{"simulate with src", func(f *cliFlags) { f.src = "x.nfc" }, ""},
		{"simulate with overrides", func(f *cliFlags) { f.cps = 1000; f.pps = 1 << 16 }, ""},
		{"every scenario", func(f *cliFlags) { f.scenario = "elephantmice" }, ""},
		{"every policy", func(f *cliFlags) { f.policy = "static" }, ""},

		{"zero rounds", func(f *cliFlags) { f.rounds = 0 }, "-rounds must be positive"},
		{"negative rounds", func(f *cliFlags) { f.rounds = -5 }, "-rounds must be positive"},
		{"negative cps", func(f *cliFlags) { f.cps = -1 }, "-cps must be >= 0"},
		{"negative pps", func(f *cliFlags) { f.pps = -1 }, "-pps must be >= 0"},
		{"unknown scenario", func(f *cliFlags) { f.scenario = "nope" }, "unknown scenario"},
		{"unknown policy", func(f *cliFlags) { f.policy = "nope" }, "unknown policy"},

		{"simulate with serve", func(f *cliFlags) { f.serveAddr = ":8080" }, "-serve"},
		{"simulate with fleet", func(f *cliFlags) { f.fleetMode = true }, "cannot be combined with -fleet"},
		{"simulate with lint", func(f *cliFlags) { f.lintMode = true }, "cannot be combined with -lint"},
		{"simulate with list", func(f *cliFlags) { f.list = true }, "cannot be combined with -list"},
		{"simulate with trace", func(f *cliFlags) { f.trace = "t.bin" }, "cannot be combined with -trace"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := simFlags()
			c.mut(&f)
			err := checkFlags(f)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}

// TestCheckFlagsSimOnlyFlags: the simulation knobs are rejected outside
// -simulate even when set to their default values (detection goes
// through flag.Visit, carried in simFlagsSet).
func TestCheckFlagsSimOnlyFlags(t *testing.T) {
	f := cliFlags{workload: "mix", nf: "mazunat", rounds: 96, simSeed: 7,
		scenario: "zipf", policy: "insight",
		simFlagsSet: []string{"-scenario"}}
	err := checkFlags(f)
	if err == nil || !strings.Contains(err.Error(), "-scenario only applies to -simulate") {
		t.Fatalf("sim-only flag outside -simulate not rejected: %v", err)
	}
}

// TestCheckFlagsExisting re-pins the pre-existing validations through the
// refactored checkFlags, so the extraction cannot have changed behavior.
func TestCheckFlagsExisting(t *testing.T) {
	cases := []struct {
		name    string
		f       cliFlags
		wantErr string
	}{
		{"json without lint", cliFlags{jsonOut: true}, "-json only applies"},
		{"model flags with list", cliFlags{list: true, modelLoad: "m.json"}, "-model-load"},
		{"negative workers", cliFlags{workers: -1}, "-workers must be >= 0"},
		{"fleet with nf", cliFlags{fleetMode: true, nf: "x"}, "-fleet analyzes"},
		{"fleet with lint", cliFlags{fleetMode: true, lintMode: true}, "mutually exclusive"},
		{"nf with src", cliFlags{nf: "a", src: "b"}, "mutually exclusive"},
		{"serve with fleet", cliFlags{serveAddr: ":1", fleetMode: true}, "-serve"},
		{"queue without serve", cliFlags{queue: 3}, "-queue and -timeout"},
		{"negative queue", cliFlags{serveAddr: ":1", queue: -1}, "-queue must be >= 0"},
		{"negative timeout", cliFlags{serveAddr: ":1", timeout: -time.Second}, "-timeout must be >= 0"},
		{"plain analyze ok", cliFlags{nf: "mazunat", workload: "mix"}, ""},
		{"serve ok", cliFlags{serveAddr: ":8080", queue: 4, timeout: time.Minute}, ""},

		{"coordinator ok", cliFlags{coordAddr: ":9090",
			workerAddrs: []string{"h1:8080", "h2:8080"}}, ""},
		{"coordinator with timeout", cliFlags{coordAddr: ":9090",
			workerAddrs: []string{"h1:8080"}, timeout: time.Minute}, ""},
		{"coordinator without workers", cliFlags{coordAddr: ":9090"},
			"-coordinator requires -workers"},
		{"coordinator with serve", cliFlags{coordAddr: ":9090", serveAddr: ":8080",
			workerAddrs: []string{"h1:8080"}}, "cannot be combined with -serve"},
		{"coordinator with nf", cliFlags{coordAddr: ":9090", nf: "tcpack",
			workerAddrs: []string{"h1:8080"}}, "cannot be combined with -nf"},
		{"coordinator with model-load", cliFlags{coordAddr: ":9090", modelLoad: "m.json",
			workerAddrs: []string{"h1:8080"}}, "cannot be combined with -model-load"},
		{"coordinator with queue", cliFlags{coordAddr: ":9090", queue: 4,
			workerAddrs: []string{"h1:8080"}}, "-queue does not apply"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := checkFlags(c.f)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("want error containing %q, got %v", c.wantErr, err)
			}
		})
	}
}

// TestParseWorkersFlag pins -workers' dual role: an integer pool size
// normally, a comma-separated endpoint list under -coordinator.
func TestParseWorkersFlag(t *testing.T) {
	if n, addrs, err := parseWorkersFlag("", false); n != 0 || addrs != nil || err != nil {
		t.Errorf("empty: got (%d, %v, %v)", n, addrs, err)
	}
	if n, _, err := parseWorkersFlag("8", false); n != 8 || err != nil {
		t.Errorf("pool size: got (%d, %v)", n, err)
	}
	if _, _, err := parseWorkersFlag("h1:8080,h2:8080", false); err == nil ||
		!strings.Contains(err.Error(), "-coordinator") {
		t.Errorf("endpoint list without -coordinator not rejected: %v", err)
	}
	_, addrs, err := parseWorkersFlag("h1:8080, h2:8080,", true)
	if err != nil || len(addrs) != 2 || addrs[0] != "h1:8080" || addrs[1] != "h2:8080" {
		t.Errorf("coordinator list: got (%v, %v)", addrs, err)
	}
	if _, addrs, _ := parseWorkersFlag("", true); len(addrs) != 0 {
		t.Errorf("empty coordinator list parsed as %v", addrs)
	}
}
