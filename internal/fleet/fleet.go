// Package fleet runs Clara's analysis over batches of (NF, workload)
// jobs: a bounded worker pool executes core.Clara analyses concurrently,
// a memoizing cache shares each module's §3 prediction across every
// workload it is analyzed under, and per-stage metrics (jobs completed,
// cache hits/misses, per-analysis wall-time histogram) are exposed as a
// Stats snapshot.
//
// The trained models (Predictor, AlgoIdentifier, ScaleoutModel) are
// shared read-only across workers — after training they are never
// mutated, and every per-job mutable structure (interpreter machines,
// host profiles, traffic generators) is created per analysis. The only
// shared mutable state the fleet adds, the prediction cache and the
// metrics, is guarded internally, so Run is safe to call with any worker
// count and its results are deterministic: result i always corresponds
// to job i, and analysis output is a pure function of the job.
package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"clara/internal/analysis"
	"clara/internal/core"
	"clara/internal/ir"
	"clara/internal/niccc"
	"clara/internal/traffic"
)

// Job is one unit of fleet work: analyze Mod under WL.
type Job struct {
	// Name labels the job in results and summaries; defaults to Mod.Name.
	Name string
	Mod  *ir.Module
	PS   core.ProfileSetup
	WL   traffic.Spec
	// Accel is the accelerator configuration the prediction assumes; it is
	// part of the cache key (the same module predicted under different
	// engine configurations yields different API costs).
	Accel niccc.AccelConfig
}

func (j Job) label() string {
	name := j.Name
	if name == "" && j.Mod != nil {
		name = j.Mod.Name
	}
	return name
}

// Result is one job's outcome, in job order.
type Result struct {
	Name     string
	Workload string
	Insights *core.Insights
	Err      error
	// Elapsed is this analysis' wall time (prediction + profiling +
	// placement + scale-out).
	Elapsed time.Duration
	// CacheHit records whether the §3 prediction was served from the
	// fleet cache rather than recomputed.
	CacheHit bool
	// Lint counts this job's offloadability diagnostics by severity.
	Lint analysis.Summary
}

// Config sizes a Fleet.
type Config struct {
	// Workers bounds the pool; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// DisableCache turns off prediction memoization (the sequential
	// baseline the benchmarks compare against).
	DisableCache bool
}

func (c Config) norm() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Fleet analyzes job batches against one trained Clara tool. The
// prediction cache persists across Run calls, so long-lived fleets
// amortize prediction cost over every batch they serve.
type Fleet struct {
	tool  *core.Clara
	cfg   Config
	cache *predCache
	stats *collector
}

// New builds a fleet around a trained tool.
func New(tool *core.Clara, cfg Config) (*Fleet, error) {
	if tool == nil || tool.Predictor == nil {
		return nil, fmt.Errorf("fleet: nil tool or untrained predictor")
	}
	cfg = cfg.norm()
	return &Fleet{
		tool:  tool,
		cfg:   cfg,
		cache: newPredCache(),
		stats: newCollector(),
	}, nil
}

// Workers returns the configured pool size.
func (f *Fleet) Workers() int { return f.cfg.Workers }

// Stats returns a consistent snapshot of the fleet's lifetime metrics.
func (f *Fleet) Stats() Stats { return f.stats.snapshot() }

// Run analyzes every job over the worker pool and returns results in job
// order regardless of scheduling. A job failure is recorded in its
// Result; Run itself only fails on malformed jobs discovered up front.
func (f *Fleet) Run(jobs []Job) ([]Result, error) {
	for i, j := range jobs {
		if j.Mod == nil {
			return nil, fmt.Errorf("fleet: job %d (%q) has no module", i, j.Name)
		}
	}
	results := make([]Result, len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	workers := f.cfg.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = f.analyze(jobs[i])
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	f.stats.addWall(time.Since(start))
	return results, nil
}

// analyze runs one job: prediction via the cache, then the
// workload-dependent analyses.
func (f *Fleet) analyze(j Job) Result {
	start := time.Now()
	res := Result{Name: j.label(), Workload: j.WL.Name}

	var mp *core.ModulePrediction
	var err error
	if f.cfg.DisableCache {
		mp, err = f.tool.Predictor.PredictModule(j.Mod, j.Accel)
	} else {
		mp, res.CacheHit, err = f.cache.get(j.Mod, j.Accel, func() (*core.ModulePrediction, error) {
			return f.tool.Predictor.PredictModule(j.Mod, j.Accel)
		})
	}
	if err == nil {
		res.Insights, err = f.tool.AnalyzeWithPrediction(j.Mod, j.PS, j.WL, mp)
	}
	if res.Insights != nil {
		res.Lint = analysis.Summarize(res.Insights.Diagnostics)
	}
	res.Err = err
	res.Elapsed = time.Since(start)
	f.stats.record(res)
	return res
}
