package clara_test

import (
	"fmt"
	"log"

	"clara"
)

// ExampleCompileNF compiles the paper's Figure 4 element (MiniNAT) and
// inspects its stateful structure.
func ExampleCompileNF() {
	mod, err := clara.CompileNF("mininat", `
map<u64,u64> int_map[4096];

void handle() {
	u16 hdr_size = (u16(pkt_ip_hl()) + u16(pkt_tcp_off())) << 2;
	if (hdr_size < pkt_ip_len()) {
		u64 key = (u64(pkt_ip_dst()) << 32) | u64(pkt_ip_src());
		if (map_contains(int_map, key)) {
			u64 f = map_find(int_map, key);
			pkt_set_ip_dst(u32(f >> 16));
			pkt_set_tcp_dport(u16(f & 0xffff));
			pkt_csum_update();
			pkt_send(0);
			return;
		}
	}
	pkt_drop();
}
`)
	if err != nil {
		log.Fatal(err)
	}
	g := mod.Global("int_map")
	fmt.Println(g.Kind, g.Len, "entries,", g.SizeBytes(), "bytes")
	// Output: map 4096 entries, 69632 bytes
}

// ExampleSimulate ports an element naively and runs it on the simulated
// SmartNIC.
func ExampleSimulate() {
	e := clara.GetElement("aggcounter")
	mod, err := e.Module()
	if err != nil {
		log.Fatal(err)
	}
	nf := &clara.NF{Name: "aggcounter", Mod: mod}
	r, err := clara.Simulate(clara.DefaultParams(), nf, clara.MediumMix, 2000, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("measured packets:", r.Packets)
	fmt.Println("forward progress:", r.ThroughputMpps > 0 && r.AvgLatencyUs > 0)
	// Output:
	// measured packets: 1800
	// forward progress: true
}

// ExampleGetElement shows the built-in library metadata.
func ExampleGetElement() {
	e := clara.GetElement("iplookup")
	fmt.Println(e.Desc)
	fmt.Println("stateful:", e.Stateful, "routes:", len(e.Routes))
	// Output:
	// LPM forwarding via software radix trie
	// stateful: true routes: 256
}
