package analysis_test

import (
	"encoding/json"
	"testing"

	"clara/internal/analysis"
	"clara/internal/click"
)

// FuzzLint drives the full parse→lower→CFG→dataflow→lint pipeline on
// arbitrary source. The contract under fuzzing: never panic, never loop
// forever (the range solver widens, the trip-count inference walks finite
// structures), and every produced diagnostic list is sorted and JSON
// round-trippable. Seeded with all stock click elements so the corpus
// starts from every loop/map/call shape the library exercises, plus the
// known-offender fixtures.
func FuzzLint(f *testing.F) {
	for _, e := range click.Library() {
		f.Add(e.Src)
	}
	for _, fx := range lintFixtures {
		f.Add(fx.src)
	}
	f.Add("void handle() { while (true) {} }")
	f.Add("void handle() { for (u32 i = 0; i < pkt_ip_src(); i += 1) {} pkt_send(0); }")
	cfg := analysis.DefaultConfig()
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return // pathological sizes time out lowering, not crash it
		}
		ds, err := analysis.LintSource("fuzz", src, cfg)
		if err != nil {
			return // malformed source is the caller's problem, not a crash
		}
		for i, d := range ds {
			if d.Rule == "" {
				t.Errorf("diagnostic %d has no rule: %+v", i, d)
			}
			if d.Severity != analysis.SevError && d.Severity != analysis.SevWarning && d.Severity != analysis.SevInfo {
				t.Errorf("diagnostic %d has bad severity: %+v", i, d)
			}
			if i > 0 {
				p := ds[i-1]
				if p.Line > d.Line || (p.Line == d.Line && p.Col > d.Col) {
					t.Errorf("diagnostics not sorted by position at %d: %v", i, ds)
				}
				if p.Line == d.Line && p.Col == d.Col && p.Rule == d.Rule &&
					p.Fn == d.Fn && p.Msg == d.Msg {
					t.Errorf("duplicate diagnostic survived dedup at %d: %v", i, ds)
				}
			}
		}
		blob, err := json.Marshal(ds)
		if err != nil {
			t.Fatalf("diagnostics not marshalable: %v", err)
		}
		var back []analysis.Diagnostic
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("diagnostics not unmarshalable: %v\n%s", err, blob)
		}
	})
}
