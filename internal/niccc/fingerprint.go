package niccc

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// LibraryFingerprint hashes the vendor library's cost profiles (including
// software fallbacks) into a stable hex digest. The trained predictor's
// targets embed these counts — reverse porting substitutes them for
// learned prediction — so a persisted model bundle records the
// fingerprint and is invalidated when the simulated toolchain's library
// changes.
func LibraryFingerprint() string {
	var lines []string
	add := func(prefix string, m map[string]LibProfile) {
		for name, p := range m {
			lines = append(lines, fmt.Sprintf("%s:%s:%d:%d:%d:%d:%d:%d",
				prefix, name, p.Instrs, p.Cycles, p.PayloadReads,
				p.PerProbeBytes, p.EngineCycles, int(p.Engine)))
		}
	}
	add("lib", Library)
	add("sw", SoftwareFallbacks)
	sort.Strings(lines)
	sum := sha256.Sum256([]byte(strings.Join(lines, "\n")))
	return hex.EncodeToString(sum[:])
}
