// Quickstart: write a small NF in NFC, train Clara, and read its
// offloading insights — the paper's headline workflow (analyze the
// unported NF, no trial-and-error porting).
package main

import (
	"fmt"
	"log"

	"clara"
)

// A little stateful rate counter, written the way a host developer would:
// procedural logic against the framework API, no SmartNIC specifics.
const src = `
map<u64,u64> flows[65536];
global u32 total_pkts;
global u32 total_bytes;

void handle() {
	if (pkt_eth_type() != 0x0800) { pkt_drop(); return; }
	u64 key = (u64(pkt_ip_src()) << 32) | u64(pkt_ip_dst());
	map_insert(flows, key, map_find(flows, key) + 1);
	total_pkts += 1;
	total_bytes += u32(pkt_len());
	pkt_send(0);
}
`

func main() {
	mod, err := clara.CompileNF("ratecounter", src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training Clara (quick mode)...")
	tool, err := clara.Train(clara.TrainConfig{Quick: true, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	ins, err := tool.Analyze(mod, clara.ProfileSetup{}, clara.MediumMix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ins.Report())

	// Apply the suggested placement and measure the difference on the
	// simulated SmartNIC.
	naive := &clara.NF{Name: "ratecounter-naive", Mod: mod}
	tuned := &clara.NF{Name: "ratecounter-clara", Mod: mod, Placement: ins.Placement}
	params := clara.DefaultParams()
	cores := ins.SuggestedCores
	if cores == 0 {
		cores = 16
	}
	rN, err := clara.Simulate(params, naive, clara.MediumMix, 3000, cores)
	if err != nil {
		log.Fatal(err)
	}
	rT, err := clara.Simulate(params, tuned, clara.MediumMix, 3000, cores)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nOn %d cores:\n", cores)
	fmt.Printf("  naive port: %.2f Mpps, %.2f us\n", rN.ThroughputMpps, rN.AvgLatencyUs)
	fmt.Printf("  Clara port: %.2f Mpps, %.2f us\n", rT.ThroughputMpps, rT.AvgLatencyUs)
}
