package ml

import (
	"testing"
)

// Benchmarks for the model hot loops the training fast path targets:
// run with `go test -bench . -benchmem ./internal/ml/` and compare
// allocs/op before and after scratch-buffer reuse.

func benchSeqData(b *testing.B) []SeqSample {
	b.Helper()
	return seqData(64, 12, 99)
}

func BenchmarkLSTMPredict(b *testing.B) {
	samples := benchSeqData(b)
	m, _ := TrainLSTM(samples, LSTMConfig{Vocab: 12, Hidden: 24, Epochs: 1, Seed: 1})
	toks := samples[0].Tokens
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(toks)
	}
}

func BenchmarkLSTMTrainEpoch(b *testing.B) {
	samples := benchSeqData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainLSTM(samples, LSTMConfig{Vocab: 12, Hidden: 24, Epochs: 1, Seed: 2})
	}
}

func BenchmarkLSTMTrainEpochParallel(b *testing.B) {
	samples := benchSeqData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainLSTM(samples, LSTMConfig{Vocab: 12, Hidden: 24, Epochs: 1, Seed: 2, Batch: 8, Workers: 0})
	}
}

func BenchmarkMLPTrain(b *testing.B) {
	X, y := synthReg(128, 42)
	targets := make([][]float64, len(y))
	for i, v := range y {
		targets[i] = []float64{v}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainMLP(X, targets, MLPConfig{Layers: []int{3, 16, 1}, Epochs: 4, Seed: 3})
	}
}

func BenchmarkMLPPredict(b *testing.B) {
	X, y := synthReg(128, 42)
	targets := make([][]float64, len(y))
	for i, v := range y {
		targets[i] = []float64{v}
	}
	m, _ := TrainMLP(X, targets, MLPConfig{Layers: []int{3, 16, 1}, Epochs: 2, Seed: 3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(X[i%len(X)])
	}
}

func BenchmarkDot(b *testing.B) {
	x := make([]float64, 512)
	y := make([]float64, 512)
	for i := range x {
		x[i] = float64(i) * 0.25
		y[i] = float64(512-i) * 0.5
	}
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += Dot(x, y)
	}
	sinkFloat = s
}

func BenchmarkAxpy(b *testing.B) {
	x := make([]float64, 512)
	y := make([]float64, 512)
	for i := range x {
		x[i] = float64(i) * 0.25
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(0.001, x, y)
	}
}

var sinkFloat float64
