package offload

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// flowState is one active flow. Flows live in a slice and are visited
// through a per-round permutation — no map iteration anywhere, so the
// simulation is bit-deterministic.
type flowState struct {
	remaining int // packets left to send
	rate      int // packets offered per round
	seen      int // slow-path packets the NIC has processed for this flow
	offloaded bool
	// offloadRound is the round the rule was installed; it takes effect
	// the following round (rule installation is slow — the premise of
	// the threshold).
	offloadRound int
}

// Record is one round of trajectory output. Integer counters are exact;
// the two rates are derived and rounded to 6 decimals so trajectories
// print identically everywhere.
type Record struct {
	Round        int     `json:"round"`
	Threshold    int     `json:"threshold"`
	Flows        int     `json:"flows"`      // active flows after the round
	TableUsed    int     `json:"table_used"` // offloaded flows still alive
	Generated    int     `json:"generated"`
	FastPath     int     `json:"fastpath"`
	SlowPath     int     `json:"slowpath"`
	Dropped      int     `json:"dropped"`
	Offloads     int     `json:"offloads"`
	OverOffloads int     `json:"over_offloads"`
	OffloadRate  float64 `json:"offload_rate"`
	DropRate     float64 `json:"drop_rate"`
}

// Trajectory is a full simulation run: the identifying header plus one
// Record per round.
type Trajectory struct {
	Scenario string   `json:"scenario"`
	Policy   string   `json:"policy"`
	Seed     int64    `json:"seed"`
	Rounds   []Record `json:"rounds"`
}

// NDJSON renders the trajectory as newline-delimited JSON: a header line
// followed by one line per round. `clara -simulate` emits exactly this,
// and the golden files pin it byte-for-byte.
func (t *Trajectory) NDJSON() string {
	var b strings.Builder
	head, _ := json.Marshal(struct {
		Scenario string `json:"scenario"`
		Policy   string `json:"policy"`
		Seed     int64  `json:"seed"`
		Rounds   int    `json:"rounds"`
	}{t.Scenario, t.Policy, t.Seed, len(t.Rounds)})
	b.Write(head)
	b.WriteByte('\n')
	for i := range t.Rounds {
		line, _ := json.Marshal(&t.Rounds[i])
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// DefaultConvergenceTarget is the steady-state drop-rate bar used by the
// CLI and the perfbench convergence benchmark.
const DefaultConvergenceTarget = 0.01

// ConvergenceRound returns the first round (1-based) from which the drop
// rate stays at or below target for every remaining round — the
// rounds-to-steady-state metric. Returns -1 if the trajectory never
// settles (including an empty trajectory).
func (t *Trajectory) ConvergenceRound(target float64) int {
	if len(t.Rounds) == 0 {
		return -1
	}
	last := -1 // last round index violating the target
	for i := range t.Rounds {
		if t.Rounds[i].DropRate > target {
			last = i
		}
	}
	switch {
	case last == len(t.Rounds)-1:
		return -1
	default:
		return last + 2 // first clean round, 1-based
	}
}

// FinalDropRate returns the last round's drop rate (0 for empty runs).
func (t *Trajectory) FinalDropRate() float64 {
	if len(t.Rounds) == 0 {
		return 0
	}
	return t.Rounds[len(t.Rounds)-1].DropRate
}

// FinalOffloadRate returns the last round's offload rate.
func (t *Trajectory) FinalOffloadRate() float64 {
	if len(t.Rounds) == 0 {
		return 0
	}
	return t.Rounds[len(t.Rounds)-1].OffloadRate
}

// Simulate runs the full control loop and returns the trajectory. The
// run is a pure function of cfg: see the package comment's determinism
// contract.
func Simulate(cfg Config) (*Trajectory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.norm()
	sc, caps := cfg.Scenario, cfg.Capacity
	pol := newPolicy(cfg.Policy)
	flowRounds := sc.flowRounds()

	traj := &Trajectory{
		Scenario: sc.Name,
		Policy:   cfg.Policy.Kind.String(),
		Seed:     cfg.Seed,
		Rounds:   make([]Record, 0, cfg.Rounds),
	}
	var flows []flowState
	tableUsed := 0

	for round := 0; round < cfg.Rounds; round++ {
		rng := roundRNG(cfg.Seed, round)

		// 1. Admit this round's new flows (SNIPPETS §1 step 1). Attack
		// flows are single-packet SYNs: pure slow-path load.
		smp := sc.Sizes.sampler(rng)
		for i := 0; i < sc.CPS; i++ {
			size := smp.sample()
			flows = append(flows, flowState{
				remaining: size,
				rate:      (size + flowRounds - 1) / flowRounds,
			})
		}
		if sc.AttackCPS > 0 && round >= sc.AttackStart {
			for i := 0; i < sc.AttackCPS; i++ {
				flows = append(flows, flowState{remaining: 1, rate: 1})
			}
		}

		// 2+3. Traverse flows in a per-round random order until the
		// offered-load cap, classifying each flow's burst onto the fast
		// or slow path (steps 2 and 3).
		var rec Record
		rec.Round = round + 1
		perm := rng.Perm(len(flows))
		for _, fi := range perm {
			if rec.Generated >= sc.PPS {
				break
			}
			f := &flows[fi]
			q := f.rate
			if q > f.remaining {
				q = f.remaining
			}
			if q > sc.PPS-rec.Generated {
				q = sc.PPS - rec.Generated
			}
			if q == 0 {
				continue
			}
			rec.Generated += q
			if f.offloaded && f.offloadRound < round {
				// Fast path: the installed rule serves the burst up to
				// the fast-path budget.
				a := caps.FastPathPPS - rec.FastPath
				if a > q {
					a = q
				}
				rec.FastPath += a
				rec.Dropped += q - a
			} else {
				// Slow path: the full NF runs on the NIC cores; the
				// excess beyond the slow-path budget is dropped.
				a := caps.SlowPathPPS - rec.SlowPath
				if a > q {
					a = q
				}
				rec.SlowPath += a
				rec.Dropped += q - a
				f.seen += a
				// Offload decision: a flow that crossed the threshold
				// and still has packets to send is a candidate; it
				// needs a rule-insertion slot this round and a free
				// table entry, otherwise the miss is counted.
				if !f.offloaded && f.seen >= pol.threshold && f.remaining > q {
					if rec.Offloads < caps.OffloadPerRound && tableUsed < caps.OffloadTable {
						f.offloaded = true
						f.offloadRound = round
						tableUsed++
						rec.Offloads++
					} else {
						rec.OverOffloads++
					}
				}
			}
			f.remaining -= q
		}

		// Flow churn: completed flows leave and release their table
		// entries. In-place compaction keeps slice order stable.
		live := flows[:0]
		for i := range flows {
			if flows[i].remaining > 0 {
				live = append(live, flows[i])
			} else if flows[i].offloaded {
				tableUsed--
			}
		}
		flows = live

		// 4. End of round: let the policy adjust the threshold, then
		// record the round. The recorded threshold is the one this
		// round ran with.
		rec.Threshold = pol.threshold
		rec.Flows = len(flows)
		rec.TableUsed = tableUsed
		if rec.Generated > 0 {
			rec.OffloadRate = round6(float64(rec.FastPath) / float64(rec.Generated))
			rec.DropRate = round6(float64(rec.Dropped) / float64(rec.Generated))
		}
		pol.adjust(rec.Offloads, rec.OverOffloads, rec.Dropped)
		traj.Rounds = append(traj.Rounds, rec)
	}
	return traj, nil
}

func round6(x float64) float64 {
	return math.Round(x*1e6) / 1e6
}

// String summarizes a trajectory for logs.
func (t *Trajectory) String() string {
	conv := t.ConvergenceRound(DefaultConvergenceTarget)
	return fmt.Sprintf("offload %s/%s: %d rounds, converged@%d, final drop %.4f offload %.4f",
		t.Scenario, t.Policy, len(t.Rounds), conv, t.FinalDropRate(), t.FinalOffloadRate())
}
