// Command clara analyzes an unported NF and prints its offloading
// insights: predicted instruction counts, accelerator opportunities,
// suggested core count, state placement, and coalescing packs.
//
// Usage:
//
//	clara -nf mazunat [-workload small|large|mix] [-quick]
//	clara -src element.nfc [-workload mix]
//	clara -nf udpcount -trace capture.bin   # profile over a recorded trace
//	clara -fleet [-workers 8] [-quick]      # whole library × all workloads
//	clara -lint -src element.nfc [-json]    # offloadability lint, no training
//	clara -serve :8080 [-workers 8] [-quick]  # HTTP analysis service
//	clara -coordinator :9090 -workers host1:8080,host2:8080  # cluster front
//	clara -nf mazunat -model-save model.json      # persist the trained model
//	clara -serve :8080 -model-load model.json     # warm start (ms, no training)
//	clara -simulate [-scenario synflood] [-policy insight] [-rounds 96]
//	clara -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"clara"
	"clara/internal/analysis"
	"clara/internal/core"
	"clara/internal/offload"
	"clara/internal/traffic"
)

// cliFlags carries every parsed flag through validation — a struct so
// checkFlags is a plain testable function instead of a positional-arg
// wall.
type cliFlags struct {
	nf, src   string
	workload  string
	trace     string
	list      bool
	fleetMode bool
	lintMode  bool
	jsonOut   bool
	serveAddr string
	workers   int
	queue     int
	timeout   time.Duration
	modelLoad string
	modelSave string

	// Coordinator mode: -coordinator :port fronts the worker endpoints
	// parsed out of -workers (which is a pool size everywhere else).
	coordAddr   string
	workerAddrs []string

	simulate bool
	scenario string
	policy   string
	rounds   int
	cps, pps int
	simSeed  int64
	// simFlagsSet lists which simulation-only flags the user set
	// explicitly (via flag.Visit) so they can be rejected outside
	// -simulate even at their default values.
	simFlagsSet []string
}

func main() {
	var (
		nfName    = flag.String("nf", "", "analyze a library element by name")
		srcPath   = flag.String("src", "", "analyze an NFC source file")
		workload  = flag.String("workload", "mix", "workload: small | large | mix")
		tracePath = flag.String("trace", "", "profile over a recorded trace file instead of a synthetic workload")
		quick     = flag.Bool("quick", false, "fast, lower-accuracy training")
		list      = flag.Bool("list", false, "list library elements and exit")
		fleetMode = flag.Bool("fleet", false, "analyze-fleet mode: every library element under every standard workload")
		workers   = flag.String("workers", "", "fleet worker pool size (0 = GOMAXPROCS); with -coordinator: comma-separated worker endpoints (host:port,...)")
		lintMode  = flag.Bool("lint", false, "offloadability lint only (static, no training); exits 1 on error-severity findings")
		jsonOut   = flag.Bool("json", false, "with -lint: emit diagnostics as a JSON array")
		serveAddr = flag.String("serve", "", "serve the HTTP analysis API on this address (e.g. :8080)")
		coordAddr = flag.String("coordinator", "", "serve the cluster coordinator on this address, fronting the -workers endpoints")
		queue     = flag.Int("queue", 0, "with -serve: max concurrent analysis requests (0 = 4x workers)")
		timeout   = flag.Duration("timeout", 0, "with -serve: per-request analysis deadline (0 = 30s)")
		modelLoad = flag.String("model-load", "", "warm-start from a saved model bundle (falls back to training when missing or invalid)")
		modelSave = flag.String("model-save", "", "after training, persist the model bundle to this path")
		quantize  = flag.Bool("quantize", false, "serve predictions from the int8-quantized LSTM path")
		simulate  = flag.Bool("simulate", false, "run the offload-controller simulation and emit the NDJSON trajectory")
		scenario  = flag.String("scenario", "zipf", "with -simulate: traffic scenario (zipf | synflood | elephantmice)")
		policy    = flag.String("policy", "insight", "with -simulate: threshold policy (static | dynamic | insight)")
		rounds    = flag.Int("rounds", 96, "with -simulate: rounds to simulate")
		cps       = flag.Int("cps", 0, "with -simulate: override new flows per round (0 = scenario default)")
		pps       = flag.Int("pps", 0, "with -simulate: override offered packets per round (0 = scenario default)")
		simSeed   = flag.Int64("sim-seed", 7, "with -simulate: trajectory PRNG seed")
		whyRule   = flag.String("why", "", "explain a lint rule (e.g. -why loop-varbound); 'list' enumerates all rules")
		interpBk  = flag.String("interp", "auto", "interpreter backend for host profiling: auto | compiled | reference")
	)
	flag.Parse()

	if bk, err := clara.ParseInterpBackend(*interpBk); err != nil {
		fmt.Fprintf(os.Stderr, "clara: %v\n\n", err)
		flag.Usage()
		os.Exit(2)
	} else if bk != clara.InterpAuto {
		if err := clara.SetInterpBackend(bk); err != nil {
			fatal(err)
		}
	}

	if *whyRule != "" {
		explainRule(*whyRule)
		return
	}

	nWorkers, workerAddrs, werr := parseWorkersFlag(*workers, *coordAddr != "")
	if werr != nil {
		fmt.Fprintf(os.Stderr, "clara: %v\n\n", werr)
		flag.Usage()
		os.Exit(2)
	}
	f := cliFlags{
		nf: *nfName, src: *srcPath, workload: *workload, trace: *tracePath,
		list: *list, fleetMode: *fleetMode, lintMode: *lintMode, jsonOut: *jsonOut,
		serveAddr: *serveAddr, workers: nWorkers, queue: *queue, timeout: *timeout,
		modelLoad: *modelLoad, modelSave: *modelSave,
		coordAddr: *coordAddr, workerAddrs: workerAddrs,
		simulate: *simulate, scenario: *scenario, policy: *policy,
		rounds: *rounds, cps: *cps, pps: *pps, simSeed: *simSeed,
	}
	simOnly := map[string]bool{"scenario": true, "policy": true, "rounds": true, "cps": true, "pps": true, "sim-seed": true}
	flag.Visit(func(fl *flag.Flag) {
		if simOnly[fl.Name] {
			f.simFlagsSet = append(f.simFlagsSet, "-"+fl.Name)
		}
	})
	if err := checkFlags(f); err != nil {
		fmt.Fprintf(os.Stderr, "clara: %v\n\n", err)
		flag.Usage()
		os.Exit(2)
	}

	if *coordAddr != "" {
		coordinate(*coordAddr, workerAddrs, *timeout)
		return
	}

	if *serveAddr != "" {
		serve(*serveAddr, nWorkers, *queue, *timeout, *quick, *quantize, *modelLoad, *modelSave)
		return
	}

	if *simulate {
		runSimulate(f, *quick, *quantize)
		return
	}

	if *list {
		fmt.Println("Built-in NF elements:")
		for _, e := range clara.Elements() {
			fmt.Printf("  %-14s %s (%d LoC)\n", e.Name, e.Desc, e.LoC())
		}
		return
	}

	if *fleetMode {
		analyzeFleet(nWorkers, *quick, *quantize, *modelLoad, *modelSave)
		return
	}

	if *lintMode {
		name, src, err := pickSource(*nfName, *srcPath)
		if err != nil {
			fatal(err)
		}
		lint(name, src, *jsonOut)
		return
	}

	wl, err := pickWorkload(*workload)
	if err != nil {
		fatal(err)
	}

	if *nfName == "" && *srcPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	mod, ps, err := resolveModule(*nfName, *srcPath)
	if err != nil {
		fatal(err)
	}

	tool, _ := obtainTool(context.Background(), *quick, *quantize, *modelLoad, *modelSave)

	if *tracePath != "" {
		// Workload comes from a recorded trace (the paper's pcap profile
		// input): run the workload-specific analyses over it directly.
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		pkts, err := traffic.ReadTrace(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		rep, err := traffic.NewReplayer(pkts)
		if err != nil {
			fatal(err)
		}
		prof, err := core.ProfileOnHostSource(mod, ps, rep, len(pkts))
		if err != nil {
			fatal(err)
		}
		placement, err := core.SuggestPlacement(mod, prof, tool.Params)
		if err != nil {
			fatal(err)
		}
		packs := core.SuggestPacks(mod, prof, tool.Coalesce)
		fmt.Printf("trace-driven analysis over %d recorded packets (%s):\n", len(pkts), *tracePath)
		fmt.Println("\nState placement:")
		for g, r := range placement {
			fmt.Printf("  %-16s -> %s\n", g, r)
		}
		if len(packs) > 0 {
			fmt.Println("Coalescing packs:")
			for i, p := range packs {
				fmt.Printf("  pack %d: %v\n", i, p)
			}
		}
		return
	}

	ins, err := tool.Analyze(mod, ps, wl)
	if err != nil {
		fatal(err)
	}
	fmt.Print(ins.Report())
}

// parseWorkersFlag interprets -workers for the current mode: a worker
// pool size everywhere except -coordinator, where it carries the
// comma-separated worker endpoint list.
func parseWorkersFlag(raw string, coordinator bool) (int, []string, error) {
	if coordinator {
		var addrs []string
		for _, a := range strings.Split(raw, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		return 0, addrs, nil
	}
	if raw == "" {
		return 0, nil, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, nil, fmt.Errorf("-workers: expected a pool size, got %q (endpoint lists go with -coordinator)", raw)
	}
	return n, nil, nil
}

// checkFlags rejects incoherent flag combinations up front (main exits 2
// with usage on error) instead of silently ignoring the extra flags.
func checkFlags(f cliFlags) error {
	if f.jsonOut && !f.lintMode {
		return fmt.Errorf("-json only applies to -lint output")
	}
	if (f.modelLoad != "" || f.modelSave != "") && (f.lintMode || f.list) {
		return fmt.Errorf("-model-load/-model-save only apply to modes that train a model (analyze, -fleet, -serve, -simulate)")
	}
	// -model-load and -model-save may name the same file: load-or-train-
	// and-save is the natural caching pattern (save only runs after an
	// actual training pass, never after a successful warm start).
	if f.workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (got %d)", f.workers)
	}
	if f.fleetMode && (f.nf != "" || f.src != "") {
		return fmt.Errorf("-fleet analyzes the whole library; it cannot be combined with -nf or -src")
	}
	if f.fleetMode && f.lintMode {
		return fmt.Errorf("-fleet and -lint are mutually exclusive modes")
	}
	if f.nf != "" && f.src != "" {
		return fmt.Errorf("-nf and -src are mutually exclusive; pick one input")
	}
	if f.coordAddr != "" {
		incompatible := []struct {
			name string
			set  bool
		}{
			{"-serve", f.serveAddr != ""}, {"-fleet", f.fleetMode}, {"-lint", f.lintMode},
			{"-list", f.list}, {"-nf", f.nf != ""}, {"-src", f.src != ""},
			{"-trace", f.trace != ""}, {"-simulate", f.simulate},
			{"-model-load", f.modelLoad != ""}, {"-model-save", f.modelSave != ""},
		}
		for _, fl := range incompatible {
			if fl.set {
				return fmt.Errorf("-coordinator fronts remote workers; it cannot be combined with %s", fl.name)
			}
		}
		if len(f.workerAddrs) == 0 {
			return fmt.Errorf("-coordinator requires -workers host1:port1,host2:port2")
		}
		if f.queue != 0 {
			return fmt.Errorf("-queue does not apply to -coordinator (each worker bounds its own admission)")
		}
	}
	if f.serveAddr != "" {
		incompatible := []struct {
			name string
			set  bool
		}{
			{"-fleet", f.fleetMode}, {"-lint", f.lintMode}, {"-list", f.list},
			{"-nf", f.nf != ""}, {"-src", f.src != ""}, {"-trace", f.trace != ""},
			{"-simulate", f.simulate},
		}
		for _, fl := range incompatible {
			if fl.set {
				return fmt.Errorf("-serve runs the HTTP service; it cannot be combined with %s", fl.name)
			}
		}
	} else if f.coordAddr == "" && (f.queue != 0 || f.timeout != 0) {
		return fmt.Errorf("-queue and -timeout only apply to -serve or -coordinator")
	}
	if f.queue < 0 {
		return fmt.Errorf("-queue must be >= 0 (got %d)", f.queue)
	}
	if f.timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0 (got %s)", f.timeout)
	}
	if f.simulate {
		incompatible := []struct {
			name string
			set  bool
		}{
			{"-fleet", f.fleetMode}, {"-lint", f.lintMode}, {"-list", f.list},
			{"-trace", f.trace != ""},
		}
		for _, fl := range incompatible {
			if fl.set {
				return fmt.Errorf("-simulate runs the offload controller; it cannot be combined with %s", fl.name)
			}
		}
		if f.rounds <= 0 {
			return fmt.Errorf("-rounds must be positive (got %d)", f.rounds)
		}
		if f.cps < 0 {
			return fmt.Errorf("-cps must be >= 0 (got %d)", f.cps)
		}
		if f.pps < 0 {
			return fmt.Errorf("-pps must be >= 0 (got %d)", f.pps)
		}
		if _, err := offload.ScenarioByName(f.scenario); err != nil {
			return fmt.Errorf("-scenario: %v", err)
		}
		if _, err := offload.PolicyByName(f.policy); err != nil {
			return fmt.Errorf("-policy: %v", err)
		}
	} else if len(f.simFlagsSet) > 0 {
		return fmt.Errorf("%s only applies to -simulate", f.simFlagsSet[0])
	}
	return nil
}

// runSimulate is the -simulate mode: build the scenario, derive the NIC
// capacities from a per-NF prediction, seed or hand-set the threshold
// policy, run the controller, and emit the NDJSON trajectory on stdout
// (summary line on stderr).
//
// With -nf/-src the prediction comes from a trained predictor (honoring
// -quick/-model-load/-model-save) for that NF — the full insight-seeding
// path. Without them a nominal mid-weight prediction stands in, so the
// baseline policies and CI smoke runs need no training at all.
func runSimulate(f cliFlags, quick, quantize bool) {
	sc, err := offload.ScenarioByName(f.scenario)
	if err != nil {
		fatal(err)
	}
	if f.cps > 0 {
		sc.CPS = f.cps
	}
	if f.pps > 0 {
		sc.PPS = f.pps
	}
	kind, err := offload.PolicyByName(f.policy)
	if err != nil {
		fatal(err)
	}

	params := clara.DefaultParams()
	mp := offload.NominalPrediction()
	var sp *analysis.StateProfile
	if f.nf != "" || f.src != "" {
		mod, _, err := resolveModule(f.nf, f.src)
		if err != nil {
			fatal(err)
		}
		tool, _ := obtainTool(context.Background(), quick, quantize, f.modelLoad, f.modelSave)
		pred, err := tool.Predictor.PredictModule(mod, clara.AccelConfig{})
		if err != nil {
			fatal(err)
		}
		mp = pred
		params = tool.Params
		// The static state profile refines the fast/slow split: only
		// header-keyed state is fast-path eligible.
		sp = analysis.ComputeStateProfile(mod)
	}

	caps := offload.DeriveCapacitiesProfile(params, mp, sp)
	var pol offload.PolicyConfig
	if kind == offload.PolicyInsight {
		pol = offload.SeedPolicy(sc, caps)
	} else {
		pol = offload.BaselinePolicy(kind, sc)
	}
	traj, err := offload.Simulate(offload.Config{
		Scenario: sc, Capacity: caps, Policy: pol, Rounds: f.rounds, Seed: f.simSeed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(traj.NDJSON())
	fmt.Fprintln(os.Stderr, "clara:", traj.String())
}

// resolveModule resolves -nf/-src to a compiled module plus its profile
// setup (state seeding for library elements).
func resolveModule(nfName, srcPath string) (*clara.Module, clara.ProfileSetup, error) {
	switch {
	case nfName != "":
		e := clara.GetElement(nfName)
		if e == nil {
			return nil, clara.ProfileSetup{}, fmt.Errorf("unknown element %q (try -list)", nfName)
		}
		m, err := e.Module()
		if err != nil {
			return nil, clara.ProfileSetup{}, err
		}
		return m, clara.ProfileSetup{Setup: e.Setup, LPMTable: e.Routes}, nil
	case srcPath != "":
		src, err := os.ReadFile(srcPath)
		if err != nil {
			return nil, clara.ProfileSetup{}, err
		}
		m, err := clara.CompileNF(srcPath, string(src))
		if err != nil {
			return nil, clara.ProfileSetup{}, err
		}
		return m, clara.ProfileSetup{}, nil
	default:
		return nil, clara.ProfileSetup{}, fmt.Errorf("need -nf or -src")
	}
}

// obtainTool resolves the trained tool for a training mode: warm-start
// from -model-load when the bundle is valid for this build and config,
// otherwise train from scratch (persisting to -model-save when set).
func obtainTool(ctx context.Context, quick, quantize bool, loadPath, savePath string) (*clara.Tool, clara.ModelInfo) {
	cfg := clara.TrainConfig{Quick: quick, Seed: 42, Quantize: quantize}
	if loadPath != "" {
		tool, hash, err := clara.LoadTool(loadPath, cfg)
		if err == nil {
			fmt.Fprintf(os.Stderr, "clara: warm start from %s (model %.12s…)\n", loadPath, hash)
			return tool, clara.ModelInfo{Hash: hash, WarmStart: true}
		}
		fmt.Fprintf(os.Stderr, "clara: cannot warm start from %s (%v); training instead\n", loadPath, err)
	}
	fmt.Fprintln(os.Stderr, "training Clara (predictor + algorithm ID + scale-out model)...")
	start := time.Now()
	tool, err := clara.TrainContext(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	info := clara.ModelInfo{TrainSeconds: time.Since(start).Seconds()}
	if savePath != "" {
		hash, err := clara.SaveTool(savePath, tool, cfg, info.TrainSeconds)
		if err != nil {
			fatal(fmt.Errorf("saving model bundle: %w", err))
		}
		fmt.Fprintf(os.Stderr, "clara: saved model bundle to %s (model %.12s…)\n", savePath, hash)
		info.Hash = hash
	}
	return tool, info
}

// serve runs the HTTP analysis service until SIGINT/SIGTERM, draining
// in-flight analyses before exiting. With a valid -model-load bundle the
// server warm-starts and is ready before the first request; otherwise it
// binds immediately and trains in the background, answering /healthz 503
// "training" until the model is ready.
func serve(addr string, workers, queue int, timeout time.Duration, quick, quantize bool, loadPath, savePath string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := clara.TrainConfig{Quick: quick, Seed: 42, Quantize: quantize}
	scfg := clara.ServerConfig{Workers: workers, QueueDepth: queue, RequestTimeout: timeout}
	if loadPath != "" {
		tool, hash, err := clara.LoadTool(loadPath, cfg)
		if err == nil {
			fmt.Fprintf(os.Stderr, "clara: warm start from %s (model %.12s…)\n", loadPath, hash)
			scfg.Tool = tool
			scfg.Model = clara.ModelInfo{Hash: hash, WarmStart: true}
		} else {
			fmt.Fprintf(os.Stderr, "clara: cannot warm start from %s (%v); training in background\n", loadPath, err)
		}
	}
	if scfg.Tool == nil {
		scfg.Train = func(ctx context.Context) (*clara.Tool, clara.ModelInfo, error) {
			fmt.Fprintln(os.Stderr, "training Clara (predictor + algorithm ID + scale-out model)...")
			start := time.Now()
			tool, err := clara.TrainContext(ctx, cfg)
			if err != nil {
				return nil, clara.ModelInfo{}, err
			}
			info := clara.ModelInfo{TrainSeconds: time.Since(start).Seconds()}
			if savePath != "" {
				hash, err := clara.SaveTool(savePath, tool, cfg, info.TrainSeconds)
				if err != nil {
					// A failed save must not take down a trained server.
					fmt.Fprintf(os.Stderr, "clara: saving model bundle: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "clara: saved model bundle to %s (model %.12s…)\n", savePath, hash)
					info.Hash = hash
				}
			}
			fmt.Fprintf(os.Stderr, "clara: model ready (trained in %.1fs)\n", info.TrainSeconds)
			return tool, info, nil
		}
	}
	srv, err := clara.NewServer(scfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "clara: serving on %s\n", addr)
	if err := srv.ListenAndServe(ctx, addr); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "clara: shut down cleanly")
}

// coordinate runs the cluster coordinator until SIGINT/SIGTERM: a
// stateless front that routes analysis jobs across the given -serve
// workers by module content hash (see internal/cluster). -timeout caps
// one forwarded sub-batch request.
func coordinate(addr string, workers []string, timeout time.Duration) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c, err := clara.NewCoordinator(clara.ClusterConfig{Workers: workers, RequestTimeout: timeout})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "clara: coordinating %d worker(s) on %s\n", len(workers), addr)
	if err := c.ListenAndServe(ctx, addr); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "clara: shut down cleanly")
}

// explainRule is the -why mode: print the catalog entry for one lint
// rule (what it means, why it matters on a SmartNIC, what to do), or the
// whole catalog for "list". Unknown rules exit 2 with the valid names.
func explainRule(rule string) {
	if rule == "list" {
		for _, d := range analysis.RuleDocs {
			fmt.Printf("%-18s %-8s %s\n", d.Rule, d.Severity, d.Summary)
		}
		return
	}
	d, ok := analysis.DocFor(rule)
	if !ok {
		fmt.Fprintf(os.Stderr, "clara: unknown lint rule %q; known rules:\n", rule)
		for _, d := range analysis.RuleDocs {
			fmt.Fprintf(os.Stderr, "  %s\n", d.Rule)
		}
		os.Exit(2)
	}
	fmt.Printf("%s (%s)\n\n%s\n\n%s\n", d.Rule, d.Severity, d.Summary, d.Detail)
}

// pickSource resolves -nf/-src to a (name, NFC source) pair.
func pickSource(nfName, srcPath string) (string, string, error) {
	switch {
	case nfName != "":
		e := clara.GetElement(nfName)
		if e == nil {
			return "", "", fmt.Errorf("unknown element %q (try -list)", nfName)
		}
		return e.Name, e.Src, nil
	case srcPath != "":
		src, err := os.ReadFile(srcPath)
		if err != nil {
			return "", "", err
		}
		return srcPath, string(src), nil
	default:
		return "", "", fmt.Errorf("-lint needs -nf or -src")
	}
}

// lint runs the static offloadability linter — no training, no
// workload — and exits non-zero when any error-severity finding exists.
func lint(name, src string, jsonOut bool) {
	ds, err := clara.LintNF(name, src)
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		blob, err := json.MarshalIndent(ds, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(blob))
	} else if len(ds) == 0 {
		fmt.Printf("%s: no findings\n", name)
	} else {
		s := clara.SummarizeDiagnostics(ds)
		fmt.Printf("%s: %d error(s), %d warning(s), %d note(s)\n", name, s.Errors, s.Warnings, s.Infos)
		fmt.Print(clara.RenderDiagnostics(ds))
	}
	if clara.SummarizeDiagnostics(ds).Errors > 0 {
		os.Exit(1)
	}
}

// analyzeFleet runs the whole element library (Table 2 order) under the
// three standard workloads on a bounded worker pool and prints the
// summary table plus the fleet's cache/latency metrics.
func analyzeFleet(workers int, quick, quantize bool, loadPath, savePath string) {
	tool, _ := obtainTool(context.Background(), quick, quantize, loadPath, savePath)
	jobs, err := clara.LibraryJobs()
	if err != nil {
		fatal(err)
	}
	fl, err := clara.NewFleet(tool, clara.FleetConfig{Workers: workers})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "analyzing %d jobs on %d workers...\n", len(jobs), fl.Workers())
	results, err := fl.Run(jobs)
	if err != nil {
		fatal(err)
	}
	fmt.Print(clara.FleetSummary(results))
	fmt.Printf("\n%s", fl.Stats())
	for _, r := range results {
		if r.Err != nil {
			os.Exit(1)
		}
	}
}

func pickWorkload(name string) (traffic.Spec, error) {
	switch name {
	case "small":
		return traffic.SmallFlows, nil
	case "large":
		return traffic.LargeFlows, nil
	case "mix":
		return traffic.MediumMix, nil
	default:
		return traffic.Spec{}, fmt.Errorf("unknown workload %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clara:", err)
	os.Exit(1)
}
