package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestWorkersClamp(t *testing.T) {
	if w := Workers(0, 100); w < 1 {
		t.Fatalf("Workers(0,100) = %d", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Fatalf("Workers(8,3) = %d, want 3", w)
	}
	if w := Workers(4, 0); w != 1 {
		t.Fatalf("Workers(4,0) = %d, want 1", w)
	}
}

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		n := 137
		hits := make([]int32, n)
		For(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4} {
		err := ForErr(context.Background(), workers, 64, func(i int) error {
			switch i {
			case 5:
				return errLow
			case 40:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want lowest-index error", workers, err)
		}
	}
}

func TestForErrCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForErr(ctx, 2, 1000, func(i int) error {
		if ran.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop the loop (ran %d)", n)
	}
}

func TestForErrNoError(t *testing.T) {
	if err := ForErr(context.Background(), 4, 50, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}
