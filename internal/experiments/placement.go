package experiments

import (
	"math"

	"clara/internal/core"
	"clara/internal/nicsim"
	"clara/internal/stats"
	"clara/internal/traffic"
)

// placementRun measures one NF under a given placement.
func placementRun(ctx *Context, name string, pl nicsim.Placement, wl traffic.Spec, cores int) (nicsim.Result, error) {
	n := ctx.packets(3000)
	r, _, err := runNF(ctx.Cfg.Params, elementNF(name, func(nf *nicsim.NF) {
		nf.Placement = pl
	}), wl, n, cores)
	return r, err
}

// Figure12 reproduces the NF state placement evaluation: Clara's ILP
// placement vs the naive all-EMEM baseline on the four complex NFs under
// small flows (§5.5: latency −33% and throughput +89% on average).
func Figure12(ctx *Context) (*Table, error) {
	params := ctx.Cfg.Params
	wl := traffic.SmallFlows
	// An operating point below the ingress ceiling, where placement
	// headroom translates into throughput (the paper's ports are far from
	// line rate on the tested NFs).
	cores := 10

	t := &Table{
		ID:     "figure12",
		Title:  "NF state placement: Clara(ILP) vs naive(all-EMEM), small flows",
		Header: []string{"NF", "port", "throughput(Mpps)", "latency(us)"},
	}
	var latGain, thGain []float64
	for _, name := range complexNFs {
		mod := elementNF(name, nil).Mod
		prof, err := core.ProfileOnHost(mod, profileSetup(name), wl, ctx.packets(1200))
		if err != nil {
			return nil, err
		}
		pl, err := core.SuggestPlacement(mod, prof, params)
		if err != nil {
			return nil, err
		}
		naive, err := placementRun(ctx, name, core.NaivePlacement(mod), wl, cores)
		if err != nil {
			return nil, err
		}
		clara, err := placementRun(ctx, name, pl, wl, cores)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, "naive", f2(naive.ThroughputMpps), f2(naive.AvgLatencyUs))
		t.AddRow(name, "Clara", f2(clara.ThroughputMpps), f2(clara.AvgLatencyUs))
		latGain = append(latGain, 1-clara.AvgLatencyUs/naive.AvgLatencyUs)
		thGain = append(thGain, clara.ThroughputMpps/naive.ThroughputMpps-1)
	}
	t.Notef("average latency reduction %s (paper: 33%%); average throughput gain %s (paper: 89%%)",
		pct(stats.Mean(latGain)), pct(stats.Mean(thGain)))
	return t, nil
}

// Figure15 reproduces the expert-emulation comparison for placement:
// Clara's ILP vs an exhaustive sweep over per-structure placements (§5.8:
// Clara's latency up to 9.7% higher, throughput up to 7.6% lower).
func Figure15(ctx *Context) (*Table, error) {
	params := ctx.Cfg.Params
	wl := traffic.SmallFlows
	cores := 10

	t := &Table{
		ID:     "figure15",
		Title:  "Placement: Clara(ILP) vs expert (exhaustive sweep), small flows",
		Header: []string{"NF", "port", "throughput(Mpps)", "latency(us)"},
	}
	var worstLat, worstTh float64
	for _, name := range complexNFs {
		mod := elementNF(name, nil).Mod
		prof, err := core.ProfileOnHost(mod, profileSetup(name), wl, ctx.packets(1200))
		if err != nil {
			return nil, err
		}
		pl, err := core.SuggestPlacement(mod, prof, params)
		if err != nil {
			return nil, err
		}
		clara, err := placementRun(ctx, name, pl, wl, cores)
		if err != nil {
			return nil, err
		}

		// Expert: measure every feasible candidate, keep the best ratio.
		cands := core.PlacementCandidates(mod, params)
		if ctx.Cfg.Quick && len(cands) > 8 {
			cands = cands[:8]
		}
		best := nicsim.Result{}
		bestScore := math.Inf(-1)
		for _, cand := range cands {
			r, err := placementRun(ctx, name, cand, wl, cores)
			if err != nil {
				return nil, err
			}
			if s := r.Ratio(); s > bestScore {
				bestScore = s
				best = r
			}
		}
		t.AddRow(name, "Clara", f2(clara.ThroughputMpps), f2(clara.AvgLatencyUs))
		t.AddRow(name, "expert", f2(best.ThroughputMpps), f2(best.AvgLatencyUs))
		if d := clara.AvgLatencyUs/best.AvgLatencyUs - 1; d > worstLat {
			worstLat = d
		}
		if d := 1 - clara.ThroughputMpps/best.ThroughputMpps; d > worstTh {
			worstTh = d
		}
	}
	t.Notef("Clara latency up to %s higher, throughput up to %s lower than exhaustive (paper: 9.7%% / 7.6%%)",
		pct(worstLat), pct(worstTh))
	return t, nil
}
