package analysis

import (
	"sort"

	"clara/internal/ir"
	"clara/internal/lang"
)

// This file is the interprocedural spine of the analysis layer: a call
// graph over a module's IR functions, Tarjan SCC condensation, and the
// SCC-ordered fixpoint driver the interprocedural passes (taint.go,
// freq.go, sccp.go) iterate on.
//
// The NFC frontend inlines every user subroutine into the packet handler,
// so frontend-lowered modules have a one-node call graph and the engine
// degenerates to the intraprocedural case for free. Hand-built IR (tests,
// external producers) may carry multiple functions whose OpCall callees
// name sibling functions; those edges — including self-recursive ones —
// are what the SCC machinery exists for.

// CallGraph is the static call graph of one module: a node per function,
// an edge per OpCall whose callee names a sibling function. Calls into the
// framework API (lang.Intrinsics) are leaves, not edges.
type CallGraph struct {
	M *ir.Module
	// Funcs indexes the module's functions; node i is Funcs[i].
	Funcs []*ir.Func
	// CFGs[i] is the cached CFG of Funcs[i] (every interprocedural pass
	// needs them; building once here keeps the passes cheap).
	CFGs []*CFG
	// Callees[i] lists the distinct callee node indices of node i,
	// ascending.
	Callees [][]int
	// Callers[i] lists the distinct caller node indices of node i,
	// ascending.
	Callers [][]int
	// sccOf[i] is the SCC index of node i; SCCs are numbered in reverse
	// topological order (callees before callers).
	sccOf []int
	// sccs[k] lists the node indices of SCC k, ascending.
	sccs [][]int

	index map[string]int
}

// BuildCallGraph derives the call graph, per-function CFGs, and the SCC
// condensation of a module.
func BuildCallGraph(m *ir.Module) *CallGraph {
	cg := &CallGraph{M: m, index: make(map[string]int, len(m.Funcs))}
	for i, f := range m.Funcs {
		cg.Funcs = append(cg.Funcs, f)
		cg.CFGs = append(cg.CFGs, BuildCFG(f))
		cg.index[f.Name] = i
	}
	cg.Callees = make([][]int, len(cg.Funcs))
	cg.Callers = make([][]int, len(cg.Funcs))
	for i, f := range cg.Funcs {
		seen := map[int]bool{}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				j, ok := cg.index[in.Callee]
				if !ok || seen[j] {
					continue // intrinsic or unknown callee, or already edged
				}
				seen[j] = true
				cg.Callees[i] = append(cg.Callees[i], j)
				cg.Callers[j] = append(cg.Callers[j], i)
			}
		}
		sort.Ints(cg.Callees[i])
	}
	for j := range cg.Callers {
		sort.Ints(cg.Callers[j])
	}
	cg.condense()
	return cg
}

// Node returns the node index of the named function, or -1.
func (cg *CallGraph) Node(name string) int {
	if i, ok := cg.index[name]; ok {
		return i
	}
	return -1
}

// IsIntrinsicCall reports whether an OpCall instruction targets the
// framework API rather than a sibling function of the module.
func (cg *CallGraph) IsIntrinsicCall(in *ir.Instr) bool {
	if _, ok := cg.index[in.Callee]; ok {
		return false
	}
	return lang.IsIntrinsic(in.Callee)
}

// CalleeNode resolves an OpCall to a call-graph node, or -1 for intrinsic
// or unknown callees.
func (cg *CallGraph) CalleeNode(in *ir.Instr) int {
	if j, ok := cg.index[in.Callee]; ok {
		return j
	}
	return -1
}

// condense runs Tarjan's algorithm iteratively (hand-built call chains can
// be deep) and numbers SCCs in reverse topological order: Tarjan pops an
// SCC only after all SCCs reachable from it, so pop order == callees
// before callers.
func (cg *CallGraph) condense() {
	n := len(cg.Funcs)
	cg.sccOf = make([]int, n)
	for i := range cg.sccOf {
		cg.sccOf[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0

	type frame struct{ v, ei int }
	for root := 0; root < n; root++ {
		if index[root] >= 0 {
			continue
		}
		work := []frame{{root, 0}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			fr := &work[len(work)-1]
			v := fr.v
			if fr.ei < len(cg.Callees[v]) {
				w := cg.Callees[v][fr.ei]
				fr.ei++
				if index[w] < 0 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{w, 0})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] { // v roots an SCC
				k := len(cg.sccs)
				var members []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					cg.sccOf[w] = k
					members = append(members, w)
					if w == v {
						break
					}
				}
				sort.Ints(members)
				cg.sccs = append(cg.sccs, members)
			}
		}
	}
}

// SCCOf returns the SCC index of node i (SCCs are numbered callees-first).
func (cg *CallGraph) SCCOf(i int) int { return cg.sccOf[i] }

// SCCs returns the strongly connected components in reverse topological
// order: every callee's SCC precedes its callers'. Members are ascending
// node indices.
func (cg *CallGraph) SCCs() [][]int { return cg.sccs }

// Recursive reports whether node i participates in a call cycle (an SCC
// with more than one member, or a self edge).
func (cg *CallGraph) Recursive(i int) bool {
	if len(cg.sccs[cg.sccOf[i]]) > 1 {
		return true
	}
	for _, j := range cg.Callees[i] {
		if j == i {
			return true
		}
	}
	return false
}

// FixpointSCC runs step over the module to a fixpoint with SCC-aware
// scheduling: SCCs are visited in reverse topological order (so
// bottom-up summaries converge in one sweep on acyclic graphs), and each
// SCC re-iterates its members until step reports no change — the loop a
// self-recursive function needs for its summary to stabilize. Because
// top-down facts (e.g. parameter taint flowing caller→callee) travel
// against this order, whole sweeps repeat until a full pass changes
// nothing. The lattices the passes use are finite and step is monotone,
// so termination is structural; maxSweeps is a defensive bound for
// hand-built adversarial inputs.
func (cg *CallGraph) FixpointSCC(step func(node int) bool) {
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := false
		for _, scc := range cg.sccs {
			for iter := 0; ; iter++ {
				sccChanged := false
				for _, node := range scc {
					if step(node) {
						sccChanged = true
						changed = true
					}
				}
				if !sccChanged || iter >= maxSweeps {
					break
				}
			}
		}
		if !changed {
			return
		}
	}
}
