package traffic

import (
	"testing"
	"testing/quick"
)

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Name: "no-flows", NumFlows: 0, PktSize: 128},
		{Name: "tiny", NumFlows: 1, PktSize: 32},
		{Name: "ratio", NumFlows: 1, PktSize: 128, SYNRatio: 1.5},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validated", s.Name)
		}
	}
	for _, s := range []Spec{LargeFlows, SmallFlows, MediumMix} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

// Seed determinism is covered table-driven in determinism_test.go.

func TestGeneratorFlowCount(t *testing.T) {
	spec := LargeFlows
	spec.NumFlows = 16
	pkts := MustTrace(spec, 2000)
	flows := make(map[uint64]bool)
	for i := range pkts {
		flows[pkts[i].FlowKey()] = true
	}
	if len(flows) > 16 {
		t.Errorf("observed %d flows, spec says 16", len(flows))
	}
	if len(flows) < 8 {
		t.Errorf("observed only %d flows of 16; generator too skewed", len(flows))
	}
}

func TestZipfSkew(t *testing.T) {
	skew := SmallFlows
	skew.NumFlows = 1000
	skew.ZipfS = 1.2
	skew.Seed = 7
	pkts := MustTrace(skew, 5000)
	counts := make(map[uint64]int)
	for i := range pkts {
		counts[pkts[i].FlowKey()]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// With heavy skew, the hottest flow should dominate a uniform share.
	if max < 5000/1000*10 {
		t.Errorf("top flow has %d packets; zipf skew not applied", max)
	}
}

func TestPacketFields(t *testing.T) {
	pkts := MustTrace(MediumMix, 500)
	sawTCP, sawUDP, sawSYN := false, false, false
	var last uint64
	for i := range pkts {
		p := &pkts[i]
		if p.Len != uint16(MediumMix.PktSize) {
			t.Fatalf("pkt %d size %d", i, p.Len)
		}
		if p.EthType != EthIPv4 || p.IPHL != 5 {
			t.Fatalf("pkt %d headers wrong", i)
		}
		if p.Time < last {
			t.Fatalf("timestamps not monotone at %d", i)
		}
		last = p.Time
		switch p.Proto {
		case ProtoTCP:
			sawTCP = true
			if p.TCPFlag&FlagSYN != 0 {
				sawSYN = true
			}
		case ProtoUDP:
			sawUDP = true
		}
		if p.OutPort != -2 {
			t.Fatalf("pkt %d disposition preset", i)
		}
	}
	if !sawTCP || !sawUDP || !sawSYN {
		t.Errorf("mix missing traffic classes: tcp=%v udp=%v syn=%v", sawTCP, sawUDP, sawSYN)
	}
}

func TestPayloadBounded(t *testing.T) {
	f := func(size uint8, payload uint8) bool {
		spec := Spec{Name: "q", NumFlows: 4, PktSize: 64 + int(size), PayloadB: int(payload), Seed: 3}
		g, err := NewGenerator(spec)
		if err != nil {
			return false
		}
		p := g.Next()
		return len(p.Payload) <= spec.PktSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResetAndDropped(t *testing.T) {
	var p Packet
	p.OutPort = 3
	p.CsumUpdated = true
	p.Reset()
	if p.OutPort != -2 || p.CsumUpdated {
		t.Error("Reset did not clear disposition")
	}
	p.OutPort = -1
	if !p.Dropped() {
		t.Error("Dropped() false after drop")
	}
}
