package ir

import (
	"fmt"
	"sort"
)

// This file implements the paper's "vocabulary compaction" (§3.2): each IR
// instruction is abstracted into a word that keeps the opcode, the result
// type, the comparison predicate, the abstracted operand kinds (VAR, INT,
// PARAM), and — for framework calls — the callee name (the analog of
// preserving "well-defined header field names"). Concrete variable names
// and constants are dropped, shrinking the vocabulary to a few hundred
// distinct words so that plain one-hot encoding works.

// Word abstracts one instruction for sequence models.
func Word(in *Instr, compactOperands bool) string {
	s := in.Op.String()
	if in.Op == OpICmp {
		s += "." + in.Pred.String()
	}
	if in.Ty != Void {
		s += "." + in.Ty.String()
	}
	switch in.Op {
	case OpCall:
		s += "@" + in.Callee
	case OpGLoad, OpGStore:
		// Keep only the access shape (indexed or scalar), not the name.
		if len(in.Args) > 0 && in.Op == OpGLoad || len(in.Args) > 1 && in.Op == OpGStore {
			s += ".idx"
		}
	}
	for _, a := range in.Args {
		if compactOperands {
			switch a.Kind {
			case VInstr:
				s += ",VAR"
			case VParam:
				s += ",PARAM"
			case VConst:
				s += ",INT"
			}
		} else {
			// Ablation mode: raw operands blow up the vocabulary.
			s += "," + a.String()
		}
	}
	return s
}

// BlockWords returns the word sequence for a basic block. Terminators are
// included: branch structure influences what the NIC compiler fuses.
func BlockWords(b *Block, compact bool) []string {
	ws := make([]string, 0, len(b.Instrs))
	for _, in := range b.Instrs {
		ws = append(ws, Word(in, compact))
	}
	return ws
}

// Vocab maps words to dense indices for one-hot encoding.
type Vocab struct {
	index map[string]int
	words []string
}

// NewVocab returns an empty vocabulary containing only the unknown word.
func NewVocab() *Vocab {
	v := &Vocab{index: make(map[string]int)}
	v.Add(UnknownWord)
	return v
}

// UnknownWord is the out-of-vocabulary token.
const UnknownWord = "<unk>"

// Add inserts a word (idempotently) and returns its index.
func (v *Vocab) Add(w string) int {
	if i, ok := v.index[w]; ok {
		return i
	}
	i := len(v.words)
	v.index[w] = i
	v.words = append(v.words, w)
	return i
}

// Index returns the index of w, or the unknown index if absent.
func (v *Vocab) Index(w string) int {
	if i, ok := v.index[w]; ok {
		return i
	}
	return v.index[UnknownWord]
}

// Size returns the number of distinct words (including <unk>).
func (v *Vocab) Size() int { return len(v.words) }

// Words returns the vocabulary in index order.
func (v *Vocab) Words() []string { return append([]string(nil), v.words...) }

// Encode maps a word sequence to its index sequence.
func (v *Vocab) Encode(words []string) []int {
	out := make([]int, len(words))
	for i, w := range words {
		out[i] = v.Index(w)
	}
	return out
}

// VocabFromWords reconstructs a vocabulary from its index-ordered word
// list (the inverse of Words, used by model-bundle decoding). The word at
// index i keeps index i, so token encodings match the original exactly.
func VocabFromWords(words []string) (*Vocab, error) {
	v := &Vocab{index: make(map[string]int, len(words))}
	for i, w := range words {
		if _, dup := v.index[w]; dup {
			return nil, fmt.Errorf("ir: duplicate vocabulary word %q at index %d", w, i)
		}
		v.index[w] = i
		v.words = append(v.words, w)
	}
	if _, ok := v.index[UnknownWord]; !ok {
		return nil, fmt.Errorf("ir: vocabulary word list lacks %q", UnknownWord)
	}
	return v, nil
}

// BuildVocab constructs a vocabulary from a corpus of modules.
func BuildVocab(mods []*Module, compact bool) *Vocab {
	v := NewVocab()
	for _, m := range mods {
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					v.Add(Word(in, compact))
				}
			}
		}
	}
	return v
}

// OpcodeDistribution computes the normalized opcode histogram of a corpus,
// the quantity Table 1's distribution distances are measured over.
func OpcodeDistribution(mods []*Module) map[string]float64 {
	counts := make(map[string]float64)
	var total float64
	for _, m := range mods {
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					key := in.Op.String()
					if in.Op == OpICmp {
						key += "." + in.Pred.String()
					}
					counts[key]++
					total++
				}
			}
		}
	}
	if total > 0 {
		for k := range counts {
			counts[k] /= total
		}
	}
	return counts
}

// AlignDistributions maps two histograms onto a shared support and returns
// the two aligned probability vectors.
func AlignDistributions(p, q map[string]float64) (pv, qv []float64) {
	keys := make(map[string]struct{})
	for k := range p {
		keys[k] = struct{}{}
	}
	for k := range q {
		keys[k] = struct{}{}
	}
	ks := make([]string, 0, len(keys))
	for k := range keys {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	pv = make([]float64, len(ks))
	qv = make([]float64, len(ks))
	for i, k := range ks {
		pv[i] = p[k]
		qv[i] = q[k]
	}
	return pv, qv
}

// SeqString renders a word sequence for debugging.
func SeqString(words []string) string {
	return fmt.Sprintf("%v", words)
}
