package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWMAPE(t *testing.T) {
	if w := WMAPE([]float64{10, 20}, []float64{9, 22}); !near(w, 0.1, 1e-12) {
		t.Errorf("WMAPE = %f, want 0.1", w)
	}
	if !math.IsNaN(WMAPE(nil, nil)) {
		t.Error("empty WMAPE should be NaN")
	}
	if !math.IsNaN(WMAPE([]float64{0}, []float64{1})) {
		t.Error("zero-denominator WMAPE should be NaN")
	}
}

func TestMAEAndMean(t *testing.T) {
	if m := MAE([]float64{1, 2, 3}, []float64{2, 2, 5}); !near(m, 1, 1e-12) {
		t.Errorf("MAE = %f", m)
	}
	if m := Mean([]float64{2, 4}); m != 3 {
		t.Errorf("Mean = %f", m)
	}
	if g := GeoMean([]float64{1, 4}); !near(g, 2, 1e-12) {
		t.Errorf("GeoMean = %f", g)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("GeoMean of negative should be NaN")
	}
}

func TestPrecisionRecall(t *testing.T) {
	// truth: 1 1 0 2 0; pred: 1 0 0 1 2
	// tp=1 (i0); fp: i3(pred1,truth2), i4(pred2,truth0) => 2; fn: i1, i3 => 2
	p, r := PrecisionRecall([]int{1, 1, 0, 2, 0}, []int{1, 0, 0, 1, 2})
	if !near(p, 1.0/3, 1e-12) {
		t.Errorf("precision = %f", p)
	}
	if !near(r, 1.0/3, 1e-12) {
		t.Errorf("recall = %f", r)
	}
	// Perfect predictions.
	p, r = PrecisionRecall([]int{1, 0, 2}, []int{1, 0, 2})
	if p != 1 || r != 1 {
		t.Errorf("perfect p/r = %f/%f", p, r)
	}
}

func TestAccuracyAndTopK(t *testing.T) {
	if a := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); !near(a, 2.0/3, 1e-12) {
		t.Errorf("Accuracy = %f", a)
	}
	scores := []float64{0.1, 0.9, 0.5}
	if !TopK(scores, 1, 1) {
		t.Error("index 1 should be top-1")
	}
	if TopK(scores, 0, 2) {
		t.Error("index 0 should not be top-2")
	}
	if !TopK(scores, 0, 3) {
		t.Error("index 0 should be top-3")
	}
}

func TestDistancesZeroForIdentical(t *testing.T) {
	p := []float64{0.25, 0.25, 0.5}
	for name, f := range map[string]func(a, b []float64) (float64, error){
		"js": JensenShannon, "renyi": RenyiDefault, "bhatt": Bhattacharyya,
		"cos": Cosine, "euclid": Euclidean, "tv": Variational,
	} {
		d, err := f(p, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !near(d, 0, 1e-6) {
			t.Errorf("%s(p,p) = %g, want ~0", name, d)
		}
	}
}

func TestDistancesGrowWithDivergence(t *testing.T) {
	p := []float64{0.5, 0.5, 0}
	close := []float64{0.45, 0.55, 0}
	far := []float64{0.05, 0.05, 0.9}
	for name, f := range map[string]func(a, b []float64) (float64, error){
		"js": JensenShannon, "renyi": RenyiDefault, "bhatt": Bhattacharyya,
		"cos": Cosine, "euclid": Euclidean, "tv": Variational,
	} {
		dc, _ := f(p, close)
		df, _ := f(p, far)
		if dc >= df {
			t.Errorf("%s: close %g !< far %g", name, dc, df)
		}
	}
}

func TestDistancesErrorOnShapeMismatch(t *testing.T) {
	if _, err := JensenShannon([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestVariationalProperty(t *testing.T) {
	// TV distance between distributions is bounded by 2 and symmetric.
	f := func(a, b uint8) bool {
		p := []float64{float64(a%7) + 1, 3, 2}
		q := []float64{float64(b%5) + 1, 1, 4}
		var sp, sq float64
		for i := range p {
			sp += p[i]
			sq += q[i]
		}
		for i := range p {
			p[i] /= sp
			q[i] /= sq
		}
		d1, _ := Variational(p, q)
		d2, _ := Variational(q, p)
		return near(d1, d2, 1e-12) && d1 >= 0 && d1 <= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJensenShannonBound(t *testing.T) {
	// JS divergence (base e) is bounded by ln 2.
	p := []float64{1, 0, 0}
	q := []float64{0, 0, 1}
	d, _ := JensenShannon(p, q)
	if d > math.Ln2+1e-9 {
		t.Errorf("JS = %f exceeds ln2", d)
	}
	if d < math.Ln2-1e-3 {
		t.Errorf("JS of disjoint = %f, want ~ln2", d)
	}
}
