package server

import (
	"net/http"
	"sync"
	"time"

	"clara/internal/fleet"
)

// statusClientClosed marks requests whose client disconnected before a
// response could be written (nginx's 499 convention).
const statusClientClosed = 499

// RouteStats counts one endpoint's requests by outcome class.
type RouteStats struct {
	Total        int64 `json:"total"`
	OK           int64 `json:"ok"`
	ClientErrors int64 `json:"client_errors"` // 4xx except 429
	ServerErrors int64 `json:"server_errors"` // 5xx
	Rejected     int64 `json:"rejected"`      // 429 backpressure
	Canceled     int64 `json:"canceled"`      // client disconnected
}

// HistogramJSON is a latency histogram in milliseconds — the /metrics
// rendering of a fleet.Histogram.
type HistogramJSON struct {
	// BoundsMs[i] is the inclusive upper bound of Counts[i];
	// Counts[len(BoundsMs)] is the overflow bucket.
	BoundsMs []float64 `json:"bounds_ms"`
	Counts   []int64   `json:"counts"`
	N        int64     `json:"n"`
	MinMs    float64   `json:"min_ms"`
	MeanMs   float64   `json:"mean_ms"`
	MaxMs    float64   `json:"max_ms"`
}

func histJSON(h fleet.Histogram) HistogramJSON {
	out := HistogramJSON{
		Counts: h.Counts,
		N:      h.N,
		MinMs:  ms(h.Min),
		MeanMs: ms(h.Mean()),
		MaxMs:  ms(h.Max),
	}
	for _, b := range h.Bounds {
		out.BoundsMs = append(out.BoundsMs, ms(b))
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// FleetStats is the /metrics rendering of fleet.Stats.
type FleetStats struct {
	JobsCompleted  int64   `json:"jobs_completed"`
	JobsFailed     int64   `json:"jobs_failed"`
	JobsCanceled   int64   `json:"jobs_canceled"`
	JobsPanicked   int64   `json:"jobs_panicked"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	CacheEvictions int64   `json:"cache_evictions"`
	Prewarmed      int64   `json:"prewarmed"`
	LintErrors     int64   `json:"lint_errors"`
	LintWarnings   int64   `json:"lint_warnings"`
	LintInfos      int64   `json:"lint_infos"`
	// Taint classification totals across analyzed jobs: loops bounded by
	// payload bytes and structures keyed by payload-derived values.
	PayloadLoops        int64         `json:"payload_loops"`
	PayloadKeyedStructs int64         `json:"payload_keyed_structs"`
	AnalysisLatency     HistogramJSON `json:"analysis_latency"`
}

// ModelStats is the /metrics rendering of the served model's
// provenance: whether the server has a model at all (false while a
// Train-configured server is still in its startup training run), where
// it came from, and its bundle hash.
type ModelStats struct {
	Ready        bool    `json:"ready"`
	WarmStart    bool    `json:"warm_start"`
	Quantized    bool    `json:"quantized,omitempty"`
	Hash         string  `json:"model_hash,omitempty"`
	TrainSeconds float64 `json:"train_seconds,omitempty"`
	TrainError   string  `json:"train_error,omitempty"`
}

// MetricsSnapshot is the /metrics response schema.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Model reports readiness and provenance of the served model.
	Model ModelStats `json:"model"`
	// Requests counts per-endpoint outcomes (analyze, lint, elements).
	Requests map[string]RouteStats `json:"requests"`
	// Queue reports admission occupancy: Depth slots of Capacity held.
	Queue struct {
		Depth    int `json:"depth"`
		Capacity int `json:"capacity"`
	} `json:"queue"`
	// Latency is the per-endpoint request wall-time distribution.
	Latency map[string]HistogramJSON `json:"latency"`
	// Fleet is the analysis pool's lifetime stats (per-job, not
	// per-request: one batch request contributes many jobs).
	Fleet FleetStats `json:"fleet"`
}

// metrics accumulates per-route counters and latency histograms.
type metrics struct {
	mu     sync.Mutex
	start  time.Time
	routes map[string]*RouteStats
	lat    map[string]*fleet.HistCollector
}

func newMetrics() *metrics {
	return &metrics{
		start:  time.Now(),
		routes: make(map[string]*RouteStats),
		lat:    make(map[string]*fleet.HistCollector),
	}
}

func (m *metrics) observe(route string, status int, d time.Duration) {
	m.mu.Lock()
	rs := m.routes[route]
	if rs == nil {
		rs = &RouteStats{}
		m.routes[route] = rs
	}
	h := m.lat[route]
	if h == nil {
		h = fleet.NewHistCollector()
		m.lat[route] = h
	}
	rs.Total++
	switch {
	case status == statusClientClosed:
		rs.Canceled++
	case status == http.StatusTooManyRequests:
		rs.Rejected++
	case status >= 500:
		rs.ServerErrors++
	case status >= 400:
		rs.ClientErrors++
	default:
		rs.OK++
	}
	m.mu.Unlock()
	h.Observe(d)
}

func (m *metrics) snapshot(fs fleet.Stats, queueDepth, queueCap int) MetricsSnapshot {
	out := MetricsSnapshot{
		Requests: make(map[string]RouteStats),
		Latency:  make(map[string]HistogramJSON),
	}
	m.mu.Lock()
	out.UptimeSeconds = time.Since(m.start).Seconds()
	for route, rs := range m.routes {
		out.Requests[route] = *rs
	}
	hists := make(map[string]*fleet.HistCollector, len(m.lat))
	for route, h := range m.lat {
		hists[route] = h
	}
	m.mu.Unlock()
	for route, h := range hists {
		out.Latency[route] = histJSON(h.Snapshot())
	}
	out.Queue.Depth = queueDepth
	out.Queue.Capacity = queueCap
	out.Fleet = FleetStats{
		JobsCompleted:       fs.JobsCompleted,
		JobsFailed:          fs.JobsFailed,
		JobsCanceled:        fs.JobsCanceled,
		JobsPanicked:        fs.JobsPanicked,
		CacheHits:           fs.CacheHits,
		CacheMisses:         fs.CacheMisses,
		CacheHitRate:        fs.HitRate(),
		CacheEvictions:      fs.CacheEvictions,
		Prewarmed:           fs.Prewarmed,
		LintErrors:          fs.LintErrors,
		LintWarnings:        fs.LintWarnings,
		LintInfos:           fs.LintInfos,
		PayloadLoops:        fs.PayloadLoops,
		PayloadKeyedStructs: fs.PayloadKeyedStructs,
		AnalysisLatency:     histJSON(fs.Analyses),
	}
	return out
}

// MergeSnapshots folds per-worker /metrics snapshots into one
// cluster-wide view: route counters and fleet counters sum, latency
// histograms merge bucket-wise (workers share HistCollector's fixed
// bounds), queue depth/capacity add across workers, and the model is
// Ready only when every worker's is. Uptime is the minimum across
// workers — the window for which all counters have been accumulating.
// The cluster coordinator serves this from its own /metrics endpoint.
func MergeSnapshots(snaps []MetricsSnapshot) MetricsSnapshot {
	out := MetricsSnapshot{
		Requests: make(map[string]RouteStats),
		Latency:  make(map[string]HistogramJSON),
	}
	if len(snaps) == 0 {
		return out
	}
	out.Model.Ready = true
	for i, s := range snaps {
		if i == 0 || s.UptimeSeconds < out.UptimeSeconds {
			out.UptimeSeconds = s.UptimeSeconds
		}
		if !s.Model.Ready {
			out.Model.Ready = false
		}
		out.Model.WarmStart = out.Model.WarmStart || s.Model.WarmStart
		out.Model.Quantized = out.Model.Quantized || s.Model.Quantized
		if out.Model.Hash == "" {
			out.Model.Hash = s.Model.Hash
		} else if s.Model.Hash != "" && s.Model.Hash != out.Model.Hash {
			// Workers serving different models is a deploy skew worth
			// surfacing; the merged view can only flag it.
			out.Model.Hash = "mixed"
		}
		out.Model.TrainSeconds += s.Model.TrainSeconds
		if s.Model.TrainError != "" && out.Model.TrainError == "" {
			out.Model.TrainError = s.Model.TrainError
		}
		for route, rs := range s.Requests {
			acc := out.Requests[route]
			acc.Total += rs.Total
			acc.OK += rs.OK
			acc.ClientErrors += rs.ClientErrors
			acc.ServerErrors += rs.ServerErrors
			acc.Rejected += rs.Rejected
			acc.Canceled += rs.Canceled
			out.Requests[route] = acc
		}
		for route, h := range s.Latency {
			out.Latency[route] = mergeHist(out.Latency[route], h)
		}
		out.Queue.Depth += s.Queue.Depth
		out.Queue.Capacity += s.Queue.Capacity
		out.Fleet = mergeFleet(out.Fleet, s.Fleet)
	}
	total := out.Fleet.CacheHits + out.Fleet.CacheMisses
	if total > 0 {
		out.Fleet.CacheHitRate = float64(out.Fleet.CacheHits) / float64(total)
	}
	return out
}

// mergeHist adds histogram b into a. Bounds come from the shared
// HistCollector bucket layout, so equal-length bound slices merge by
// adding counts; a dimension mismatch (a worker on a different build)
// keeps a's buckets and only folds b's scalar moments.
func mergeHist(a, b HistogramJSON) HistogramJSON {
	if a.N == 0 {
		return b
	}
	if b.N == 0 {
		return a
	}
	out := HistogramJSON{
		BoundsMs: a.BoundsMs,
		Counts:   append([]int64(nil), a.Counts...),
	}
	if len(a.Counts) == len(b.Counts) {
		for i := range out.Counts {
			out.Counts[i] += b.Counts[i]
		}
	}
	out.N = a.N + b.N
	out.MinMs = a.MinMs
	if b.MinMs < out.MinMs {
		out.MinMs = b.MinMs
	}
	out.MaxMs = a.MaxMs
	if b.MaxMs > out.MaxMs {
		out.MaxMs = b.MaxMs
	}
	out.MeanMs = (a.MeanMs*float64(a.N) + b.MeanMs*float64(b.N)) / float64(out.N)
	return out
}

// mergeFleet sums b's counters into a. CacheHitRate is recomputed by
// the caller once all workers are folded in.
func mergeFleet(a, b FleetStats) FleetStats {
	a.JobsCompleted += b.JobsCompleted
	a.JobsFailed += b.JobsFailed
	a.JobsCanceled += b.JobsCanceled
	a.JobsPanicked += b.JobsPanicked
	a.CacheHits += b.CacheHits
	a.CacheMisses += b.CacheMisses
	a.CacheEvictions += b.CacheEvictions
	a.Prewarmed += b.Prewarmed
	a.LintErrors += b.LintErrors
	a.LintWarnings += b.LintWarnings
	a.LintInfos += b.LintInfos
	a.PayloadLoops += b.PayloadLoops
	a.PayloadKeyedStructs += b.PayloadKeyedStructs
	a.AnalysisLatency = mergeHist(a.AnalysisLatency, b.AnalysisLatency)
	return a
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	fl, info, trainErr := s.state()
	var fs fleet.Stats
	if fl != nil {
		fs = fl.Stats()
	}
	snap := s.met.snapshot(fs, len(s.sem), cap(s.sem))
	snap.Model = ModelStats{
		Ready:        fl != nil,
		WarmStart:    info.WarmStart,
		Hash:         info.Hash,
		TrainSeconds: info.TrainSeconds,
	}
	if t := s.tool(); t != nil && t.Predictor != nil {
		snap.Model.Quantized = t.Predictor.Quantized()
	}
	if trainErr != nil {
		snap.Model.TrainError = trainErr.Error()
	}
	writeJSON(w, http.StatusOK, snap)
}
