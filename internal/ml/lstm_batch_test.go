package ml

import (
	"math"
	"math/rand"
	"testing"
)

func testSeqs(rng *rand.Rand, vocab, n int) [][]int {
	seqs := make([][]int, n)
	for i := range seqs {
		T := rng.Intn(14) // includes empty sequences
		seqs[i] = make([]int, T)
		for t := range seqs[i] {
			seqs[i][t] = rng.Intn(vocab)
		}
	}
	// Force duplicates: every third sequence repeats an earlier one.
	for i := 3; i < n; i += 3 {
		seqs[i] = seqs[rng.Intn(i)]
	}
	return seqs
}

// The batch path must reproduce the per-sequence path bit-for-bit — for
// batch=1, for large batches with duplicates, and for empty sequences.
func TestPredictBatchBitIdenticalToPredictRaw(t *testing.T) {
	cfg := LSTMConfig{Vocab: 37, Hidden: 28, Out: 2, Seed: 5}
	m := NewLSTM(cfg)
	rng := rand.New(rand.NewSource(21))
	seqs := testSeqs(rng, cfg.Vocab, 64)

	batch := m.PredictRawBatch(seqs)
	for i, seq := range seqs {
		want := m.PredictRaw(seq)
		for d := range want {
			if math.Float64bits(batch[i][d]) != math.Float64bits(want[d]) {
				t.Fatalf("seq %d (len %d) out[%d]: batch %v (%x), legacy %v (%x)",
					i, len(seq), d, batch[i][d], math.Float64bits(batch[i][d]),
					want[d], math.Float64bits(want[d]))
			}
		}
	}

	// batch=1 explicitly, and the clamped variants.
	for _, seq := range seqs[:8] {
		b1 := m.PredictRawBatch([][]int{seq})[0]
		want := m.PredictRaw(seq)
		for d := range want {
			if math.Float64bits(b1[d]) != math.Float64bits(want[d]) {
				t.Fatalf("batch=1 mismatch: %v vs %v", b1, want)
			}
		}
		c1 := LSTMPredictBatch(m, [][]int{seq})[0]
		wc := m.Predict(seq)
		for d := range wc {
			if math.Float64bits(c1[d]) != math.Float64bits(wc[d]) {
				t.Fatalf("clamped batch=1 mismatch: %v vs %v", c1, wc)
			}
		}
	}
}

// Duplicate inputs must get independent output slices.
func TestPredictBatchOutputsIndependent(t *testing.T) {
	m := NewLSTM(LSTMConfig{Vocab: 5, Hidden: 8, Out: 1, Seed: 1})
	seq := []int{1, 2, 3}
	outs := m.PredictRawBatch([][]int{seq, seq})
	if &outs[0][0] == &outs[1][0] {
		t.Fatal("duplicate sequences share an output slice")
	}
	outs[0][0] = 42
	if outs[1][0] == 42 {
		t.Fatal("mutating one duplicate's output changed the other")
	}
}

// Quantize→dequantize round-trip bounds: each reconstructed weight must
// be within half a quantization step of the original, per gate row.
func TestQuantizeRoundTripBounds(t *testing.T) {
	cfg := LSTMConfig{Vocab: 11, Hidden: 28, Out: 1, Seed: 9}
	m := NewLSTM(cfg)
	q := m.Quantize()
	H := cfg.Hidden
	G := 4 * H
	wh := m.params[m.oWh:m.oB]
	for g := 0; g < G; g++ {
		maxAbs := 0.0
		for r := 0; r < H; r++ {
			if a := math.Abs(wh[r*G+g]); a > maxAbs {
				maxAbs = a
			}
		}
		step := maxAbs / 127
		for r := 0; r < H; r++ {
			// whFactor folds the activation scale 1/127; undo it to get
			// back to weight units.
			rec := float64(q.qWh[g*H+r]) * q.whFactor[g] * 127
			if err := math.Abs(rec - wh[r*G+g]); err > step/2+1e-15 {
				t.Fatalf("gate %d unit %d: |%g - %g| = %g exceeds step/2 = %g",
					g, r, rec, wh[r*G+g], err, step/2)
			}
		}
	}
}

// Quantization must be deterministic and survive serialization exactly.
func TestQuantizedStateRoundTrip(t *testing.T) {
	m := NewLSTM(LSTMConfig{Vocab: 13, Hidden: 16, Out: 2, Seed: 3})
	q1 := m.Quantize()
	q2, err := NewQuantizedLSTMFromState(q1.Export(), m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range q1.qWh {
		if q1.qWh[i] != q2.qWh[i] {
			t.Fatalf("qWh[%d] differs after round-trip", i)
		}
	}
	for i := range q1.whFactor {
		if math.Float64bits(q1.whFactor[i]) != math.Float64bits(q2.whFactor[i]) {
			t.Fatalf("whFactor[%d] differs after round-trip", i)
		}
	}
	rng := rand.New(rand.NewSource(30))
	seqs := testSeqs(rng, 13, 20)
	o1 := q1.PredictRawBatch(seqs)
	o2 := q2.PredictRawBatch(seqs)
	for i := range o1 {
		for d := range o1[i] {
			if math.Float64bits(o1[i][d]) != math.Float64bits(o2[i][d]) {
				t.Fatalf("seq %d: round-tripped model predicts differently", i)
			}
		}
	}
	// Bad shapes must be rejected.
	st := q1.Export()
	st.QWh = st.QWh[:len(st.QWh)-1]
	if _, err := NewQuantizedLSTMFromState(st, m); err == nil {
		t.Fatal("truncated quantized state accepted")
	}
}

// The quantized forward tracks the f32 forward closely on random models:
// this is a smoke bound (the real accuracy gate runs WMAPE on the
// element library at the repo root).
func TestQuantizedPredictClose(t *testing.T) {
	cfg := LSTMConfig{Vocab: 29, Hidden: 28, Out: 1, Seed: 12}
	m := NewLSTM(cfg)
	q := m.Quantize()
	rng := rand.New(rand.NewSource(40))
	seqs := testSeqs(rng, cfg.Vocab, 50)
	f := m.PredictRawBatch(seqs)
	qq := q.PredictRawBatch(seqs)
	for i := range seqs {
		for d := range f[i] {
			diff := math.Abs(f[i][d] - qq[i][d])
			if diff > 0.15 { // raw units are TargetScale-sized (×10)
				t.Fatalf("seq %d: f32 %v vs int8 %v (diff %g)", i, f[i], qq[i], diff)
			}
		}
	}
	// Single-sequence helper agrees with the batch.
	one := q.PredictRaw(seqs[1])
	for d := range one {
		if math.Float64bits(one[d]) != math.Float64bits(qq[1][d]) {
			t.Fatal("QuantizedLSTM.PredictRaw disagrees with PredictRawBatch")
		}
	}
}

func TestFastTanhAccuracy(t *testing.T) {
	for x := -12.0; x <= 12.0; x += 0.00137 {
		if err := math.Abs(fastTanh(x) - math.Tanh(x)); err > 3e-6 {
			t.Fatalf("fastTanh(%g) error %g", x, err)
		}
		want := 1 / (1 + math.Exp(-x))
		if err := math.Abs(fastSigmoid(x) - want); err > 3e-6 {
			t.Fatalf("fastSigmoid(%g) error %g", x, err)
		}
	}
	if fastTanh(100) != 1 || fastTanh(-100) != -1 {
		t.Fatal("fastTanh does not saturate")
	}
}
