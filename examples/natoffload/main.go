// NAT offload: port the library's Mazu-NAT to the SmartNIC three ways —
// naive, Clara-advised, and Clara-advised at the suggested core count —
// and compare (the §5 porting methodology in miniature).
package main

import (
	"fmt"
	"log"

	"clara"
)

func main() {
	e := clara.GetElement("mazunat")
	mod, err := e.Module()
	if err != nil {
		log.Fatal(err)
	}
	params := clara.DefaultParams()
	wl := clara.SmallFlows

	fmt.Println("training Clara (quick mode)...")
	tool, err := clara.Train(clara.TrainConfig{Quick: true, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	ins, err := tool.Analyze(mod, clara.ProfileSetup{Setup: e.Setup}, wl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ins.Report())

	naive := &clara.NF{Name: "mazunat-naive", Mod: mod, Setup: e.Setup}
	advised := &clara.NF{
		Name: "mazunat-clara", Mod: mod, Setup: e.Setup,
		Placement: ins.Placement,
		Packs:     ins.Packs,
		Accel:     clara.AccelConfig{CsumEngine: true}, // checksum engine suggestion
	}

	fmt.Println("\nport comparison (40 cores, small flows):")
	for _, nf := range []*clara.NF{naive, advised} {
		r, err := clara.Simulate(params, nf, wl, 4000, 40)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %.2f Mpps  %.2f us\n", nf.Name, r.ThroughputMpps, r.AvgLatencyUs)
	}

	if ins.SuggestedCores > 0 {
		r, err := clara.Simulate(params, advised, wl, 4000, ins.SuggestedCores)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  at Clara's %d-core suggestion: %.2f Mpps  %.2f us (Th/Lat %.2f)\n",
			ins.SuggestedCores, r.ThroughputMpps, r.AvgLatencyUs,
			r.ThroughputMpps/r.AvgLatencyUs)
	}
}
