package ml

import (
	"math"
	"math/rand"
	"sort"
)

// TreeConfig controls CART tree induction.
type TreeConfig struct {
	MaxDepth    int
	MinSamples  int // minimum samples to attempt a split
	FeatureFrac float64
	Rng         *rand.Rand // used only when FeatureFrac < 1
}

func (c TreeConfig) norm() TreeConfig {
	if c.MaxDepth == 0 {
		c.MaxDepth = 6
	}
	if c.MinSamples == 0 {
		c.MinSamples = 4
	}
	if c.FeatureFrac == 0 {
		c.FeatureFrac = 1
	}
	return c
}

type treeNode struct {
	feature int
	thresh  float64
	left    int // child indices; -1 = leaf
	right   int
	value   float64 // leaf prediction (mean target / class score)
}

// Tree is a CART regression tree.
type Tree struct {
	nodes []treeNode
}

// FitTree builds a regression tree on (X, y) using variance-reduction
// splits.
func FitTree(X [][]float64, y []float64, cfg TreeConfig) *Tree {
	cfg = cfg.norm()
	t := &Tree{}
	idx := make([]int, len(y))
	for i := range idx {
		idx[i] = i
	}
	t.build(X, y, idx, 0, cfg)
	return t
}

func mean(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

// build appends a node for idx and returns its index.
func (t *Tree) build(X [][]float64, y []float64, idx []int, depth int, cfg TreeConfig) int {
	node := treeNode{left: -1, right: -1, value: mean(y, idx)}
	ni := len(t.nodes)
	t.nodes = append(t.nodes, node)
	if depth >= cfg.MaxDepth || len(idx) < cfg.MinSamples {
		return ni
	}

	nf := len(X[0])
	feats := make([]int, nf)
	for i := range feats {
		feats[i] = i
	}
	if cfg.FeatureFrac < 1 && cfg.Rng != nil {
		cfg.Rng.Shuffle(nf, func(i, j int) { feats[i], feats[j] = feats[j], feats[i] })
		k := int(math.Ceil(cfg.FeatureFrac * float64(nf)))
		if k < 1 {
			k = 1
		}
		feats = feats[:k]
		sort.Ints(feats)
	}

	bestFeat, bestThresh, bestGain := -1, 0.0, 0.0
	var sumAll, sqAll float64
	for _, i := range idx {
		sumAll += y[i]
		sqAll += y[i] * y[i]
	}
	total := float64(len(idx))
	sseAll := sqAll - sumAll*sumAll/total

	order := make([]int, len(idx))
	for _, f := range feats {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		var sumL, sqL float64
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			sumL += y[i]
			sqL += y[i] * y[i]
			if X[order[k]][f] == X[order[k+1]][f] {
				continue // can't split between equal values
			}
			nL := float64(k + 1)
			nR := total - nL
			sseL := sqL - sumL*sumL/nL
			sumR := sumAll - sumL
			sseR := (sqAll - sqL) - sumR*sumR/nR
			gain := sseAll - sseL - sseR
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestFeat = f
				bestThresh = (X[order[k]][f] + X[order[k+1]][f]) / 2
			}
		}
	}
	if bestFeat < 0 {
		return ni
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return ni
	}
	t.nodes[ni].feature = bestFeat
	t.nodes[ni].thresh = bestThresh
	l := t.build(X, y, li, depth+1, cfg)
	r := t.build(X, y, ri, depth+1, cfg)
	t.nodes[ni].left = l
	t.nodes[ni].right = r
	return ni
}

// Predict evaluates the tree.
func (t *Tree) Predict(x []float64) float64 {
	ni := 0
	for {
		n := &t.nodes[ni]
		if n.left < 0 {
			return n.value
		}
		if x[n.feature] <= n.thresh {
			ni = n.left
		} else {
			ni = n.right
		}
	}
}

// TreeClassifier wraps per-class regression trees (one-vs-rest on 0/1
// targets) into a classifier.
type TreeClassifier struct {
	Classes []int
	trees   []*Tree
}

// FitTreeClassifier trains one tree per distinct label.
func FitTreeClassifier(X [][]float64, labels []int, cfg TreeConfig) *TreeClassifier {
	classes := distinctLabels(labels)
	tc := &TreeClassifier{Classes: classes}
	for _, c := range classes {
		y := make([]float64, len(labels))
		for i, l := range labels {
			if l == c {
				y[i] = 1
			}
		}
		tc.trees = append(tc.trees, FitTree(X, y, cfg))
	}
	return tc
}

// PredictClass returns the class whose tree scores highest.
func (tc *TreeClassifier) PredictClass(x []float64) int {
	best, bestScore := tc.Classes[0], math.Inf(-1)
	for i, tr := range tc.trees {
		if s := tr.Predict(x); s > bestScore {
			bestScore = s
			best = tc.Classes[i]
		}
	}
	return best
}

func distinctLabels(labels []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, l := range labels {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	sort.Ints(out)
	return out
}
