package nicsim

import (
	"fmt"

	"clara/internal/interp"
	"clara/internal/ir"
	"clara/internal/isa"
	"clara/internal/niccc"
)

// Placement assigns each stateful global to a memory region. Globals absent
// from the map go to EMEM — the paper's naive baseline (§5.5).
type Placement map[string]isa.Region

// NF is a ported network function: the program plus its porting decisions
// (accelerator usage, state placement, variable packing, flow cache). The
// deltas between two NF values for the same module are exactly the "porting
// strategies" Clara suggests.
type NF struct {
	Name  string
	Mod   *ir.Module
	Accel niccc.AccelConfig

	// Placement of stateful globals (nil = everything in EMEM).
	Placement Placement

	// Packs is the memory-coalescing plan: groups of scalar globals
	// allocated adjacently and fetched/written as one access (§4.4).
	// nil = no coalescing (each scalar accessed individually).
	Packs [][]string

	// LPMTable configures the lpm_hw engine for this NF.
	LPMTable []interp.Route

	// Setup pre-populates NF state (rules, table entries) before traffic.
	Setup func(*interp.Machine) error

	Seed uint64
}

// Built is a compiled, state-initialized NF ready for trace generation.
type Built struct {
	NF      *NF
	Prog    *isa.Program
	Machine *interp.Machine
	place   []isa.Region // per-global index
	packOf  map[string]int
	packSz  []int
}

// Build compiles the NF with the vendor toolchain, instantiates NIC-mode
// state, applies Setup, and validates the placement against region
// capacities.
func (nf *NF) Build(params Params) (*Built, error) {
	prog, err := niccc.Compile(nf.Mod, niccc.Options{Accel: nf.Accel})
	if err != nil {
		return nil, err
	}
	m, err := interp.New(nf.Mod, interp.Config{
		Mode:     interp.NICMap,
		LPMTable: nf.LPMTable,
		Seed:     nf.Seed,
	})
	if err != nil {
		return nil, err
	}
	if nf.Setup != nil {
		if err := nf.Setup(m); err != nil {
			return nil, fmt.Errorf("nicsim: %s setup: %w", nf.Name, err)
		}
	}
	b := &Built{NF: nf, Prog: prog, Machine: m, packOf: map[string]int{}}

	// Resolve placement and check capacities. Regions are tallied in a
	// fixed array so the overflow error is deterministic when several
	// regions overflow at once.
	var used [isa.NumRegions]int
	for _, g := range nf.Mod.Globals {
		r := isa.EMEM
		if nf.Placement != nil {
			if pr, ok := nf.Placement[g.Name]; ok {
				r = pr
			}
		}
		if r == isa.LMEM {
			return nil, fmt.Errorf("nicsim: %s: global %q placed in LMEM (core-private, not addressable state)", nf.Name, g.Name)
		}
		b.place = append(b.place, r)
		used[r] += g.SizeBytes()
	}
	for r, bytes := range used {
		if bytes > params.Regions[r].Capacity {
			return nil, fmt.Errorf("nicsim: %s: placement overflows %s (%d > %d bytes)",
				nf.Name, isa.Region(r), bytes, params.Regions[r].Capacity)
		}
	}

	// Index the coalescing packs.
	for pi, pack := range nf.Packs {
		size := 0
		for _, name := range pack {
			g := nf.Mod.Global(name)
			if g == nil || g.Kind != ir.GScalar {
				return nil, fmt.Errorf("nicsim: %s: pack member %q is not a scalar global", nf.Name, name)
			}
			if _, dup := b.packOf[name]; dup {
				return nil, fmt.Errorf("nicsim: %s: %q appears in two packs", nf.Name, name)
			}
			b.packOf[name] = pi
			size += g.Elem.Size()
		}
		b.packSz = append(b.packSz, size)
	}
	return b, nil
}

// regionOf returns the placed region of a global (PktMeta pins to CTM).
func (b *Built) regionOf(name string) isa.Region {
	if name == niccc.PktMeta {
		return isa.CTM
	}
	for i, g := range b.NF.Mod.Globals {
		if g.Name == name {
			return b.place[i]
		}
	}
	return isa.EMEM
}
