package ir

import "crypto/sha256"

// Fingerprint is the sha256 content hash of a module's printed IR. It is
// the one module-identity key shared across the system: the fleet's
// prediction cache and the cluster coordinator's routing use it (via
// fleet.ContentHash), and the interpreter's compiled-program cache keys
// on it too — so a serving worker that receives the same NF source in
// many requests compiles it exactly once, and the worker the coordinator
// routes a module to is the worker whose caches already hold both its
// prediction and its compiled program.
//
// Hashing the printed form rather than pointer identity matters for
// serving: modules parsed from submitted source get a fresh *Module per
// request, while identical source always prints (and therefore hashes)
// identically. Modules are immutable once built, so the hash is stable.
// The hash is memoized on the module: printing a large NF and hashing
// the text costs ~1ms and hundreds of allocations, and the fleet asks
// for the same module's identity on every cache lookup, prewarm, and
// machine construction.
func Fingerprint(m *Module) [sha256.Size]byte {
	m.fpOnce.Do(func() {
		m.fp = sha256.Sum256([]byte(m.String()))
	})
	return m.fp
}
