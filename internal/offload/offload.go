// Package offload closes the loop from Clara's one-shot insights to live
// per-flow offload decisions: a round-based simulation of a SmartNIC's
// fast-path/slow-path split driven by a continuous flow stream, with an
// adaptive offload threshold.
//
// The control loop mirrors the threshold-adjustment simulator the
// SmartNICSimulator README describes (SNIPPETS.md §1): each round (one
// simulated second) the traffic source creates CPS new flows, active flows
// emit packets up to the PPS offered-load cap, and every packet lands on
// the fast path (its flow holds an offload rule) or the slow path (the
// full NF runs on the NIC cores). Slow-path packets beyond the slow-path
// capacity are dropped. A flow whose slow-path packet count crosses the
// offload threshold is marked for offload if this round's rule-insertion
// budget and the offload table have room; otherwise the over-offload
// counter records the missed opportunity. At the end of the round the
// threshold policy adjusts the threshold from the round's offloadCount /
// overOffloadCount / dropCount.
//
// Three policies are compared: a static hand-set threshold, the classic
// dynamic adjustment, and an insight-seeded policy whose initial threshold
// and adjustment step are derived from Clara's per-NF prediction (see
// seed.go) — the same adjustment rule as the dynamic policy, so any
// convergence advantage comes purely from where Clara starts it.
//
// Determinism contract: a Config fully determines the trajectory. The
// simulator never reads the wall clock or global PRNG state; each round
// draws from a fresh PRNG derived from the config seed and the round
// number (splitmix64), flows live in slices (no map iteration), and the
// whole simulation is single-goroutine. Same seed ⇒ bit-identical
// trajectories for any GOMAXPROCS, which is what lets the golden tests
// pin per-round JSON byte-for-byte.
package offload

import (
	"fmt"
	"math/rand"
)

// PolicyKind selects the threshold policy.
type PolicyKind int

const (
	// PolicyStatic never moves the threshold.
	PolicyStatic PolicyKind = iota
	// PolicyDynamic is the classic adjustment: lower on drops, raise on
	// over-offloads, from a hand-set starting point.
	PolicyDynamic
	// PolicyInsight uses the same adjustment rule as PolicyDynamic but
	// starts from a threshold and step derived from Clara's per-NF
	// prediction (SeedFromPrediction).
	PolicyInsight
)

// String returns the CLI/JSON name of the policy.
func (k PolicyKind) String() string {
	switch k {
	case PolicyStatic:
		return "static"
	case PolicyDynamic:
		return "dynamic"
	case PolicyInsight:
		return "insight"
	default:
		return fmt.Sprintf("policy(%d)", int(k))
	}
}

// PolicyByName parses a CLI policy name.
func PolicyByName(name string) (PolicyKind, error) {
	switch name {
	case "static":
		return PolicyStatic, nil
	case "dynamic":
		return PolicyDynamic, nil
	case "insight":
		return PolicyInsight, nil
	default:
		return 0, fmt.Errorf("offload: unknown policy %q (static|dynamic|insight)", name)
	}
}

// PolicyConfig parameterizes a threshold policy.
type PolicyConfig struct {
	Kind PolicyKind
	// Initial is the starting threshold (slow-path packets a flow must
	// accumulate before it becomes an offload candidate).
	Initial int
	// Step is the additive adjustment applied per round by the dynamic
	// rule; ignored by PolicyStatic.
	Step int
	// Min and Max clamp the threshold. Zero values default to 1 and the
	// scenario's maximum flow size.
	Min, Max int
}

// Capacities are the per-round capacity knobs of the simulated NIC,
// normally derived from a nicsim hardware model plus a per-NF prediction
// (DeriveCapacities).
type Capacities struct {
	// FastPathPPS bounds packets/round served by installed offload rules
	// (ingress ceiling or the NIC cores running the NF, whichever is
	// smaller). Fast-path packets beyond it are dropped.
	FastPathPPS int
	// SlowPathPPS bounds packets/round the slow path absorbs; the
	// excess is dropped (MAX_SLOW_PATH_SPEED in SNIPPETS §1).
	SlowPathPPS int
	// OffloadTable bounds concurrently offloaded flows (the flow cache).
	OffloadTable int
	// OffloadPerRound bounds rule insertions per round — rule
	// installation is slow, which is the whole reason a threshold
	// exists (MAX_OFFLOAD_SPEED in SNIPPETS §1).
	OffloadPerRound int
}

// Validate rejects non-positive capacities.
func (c Capacities) Validate() error {
	if c.FastPathPPS <= 0 || c.SlowPathPPS <= 0 {
		return fmt.Errorf("offload: fast/slow path capacities must be positive (got %d/%d)", c.FastPathPPS, c.SlowPathPPS)
	}
	if c.OffloadTable <= 0 || c.OffloadPerRound <= 0 {
		return fmt.Errorf("offload: offload table/rate must be positive (got %d/%d)", c.OffloadTable, c.OffloadPerRound)
	}
	return nil
}

// Config fully determines one simulation run.
type Config struct {
	Scenario Scenario
	Capacity Capacities
	Policy   PolicyConfig
	// Rounds is the number of simulated seconds.
	Rounds int
	// Seed is the only entropy source; every per-round PRNG derives
	// from it.
	Seed int64
}

// norm fills policy defaults that depend on the scenario.
func (c Config) norm() Config {
	if c.Policy.Min <= 0 {
		c.Policy.Min = 1
	}
	if c.Policy.Max <= 0 {
		c.Policy.Max = c.Scenario.Sizes.maxSize()
	}
	if c.Policy.Initial <= 0 {
		c.Policy.Initial = DefaultStaticThreshold
	}
	if c.Policy.Step <= 0 {
		c.Policy.Step = DefaultDynamicStep
	}
	return c
}

// Validate checks the whole configuration; Simulate rejects configs it
// fails on.
func (c Config) Validate() error {
	if c.Rounds <= 0 {
		return fmt.Errorf("offload: Rounds must be positive (got %d)", c.Rounds)
	}
	if err := c.Scenario.Validate(); err != nil {
		return err
	}
	if err := c.Capacity.Validate(); err != nil {
		return err
	}
	p := c.norm().Policy
	if p.Kind != PolicyStatic && p.Kind != PolicyDynamic && p.Kind != PolicyInsight {
		return fmt.Errorf("offload: unknown policy kind %d", int(p.Kind))
	}
	if p.Min > p.Max {
		return fmt.Errorf("offload: policy Min %d > Max %d", p.Min, p.Max)
	}
	if p.Initial < p.Min || p.Initial > p.Max {
		return fmt.Errorf("offload: policy Initial %d outside [%d,%d]", p.Initial, p.Min, p.Max)
	}
	return nil
}

// Hand-set defaults for the baseline policies: the "big flows only"
// threshold an operator might configure without Clara, and the classic
// fixed adjustment step.
const (
	DefaultStaticThreshold = 512
	DefaultDynamicStep     = 8
)

// roundSeed derives the round-r PRNG seed from the config seed via
// splitmix64 — adjacent rounds get decorrelated streams, and the mapping
// is pure, which is the determinism contract's foundation.
func roundSeed(seed int64, round int) int64 {
	z := uint64(seed) + uint64(round+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

func roundRNG(seed int64, round int) *rand.Rand {
	return rand.New(rand.NewSource(roundSeed(seed, round)))
}
