GO ?= go

.PHONY: build test race vet fmt-check check serve-check fuzz bench-fleet update-golden

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-checked run of every package; the fleet tests drive 17 NFs x 3
# workloads across an 8-worker pool under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt-check fails listing any file gofmt would rewrite.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# serve-check exercises the HTTP serving layer end to end under the
# race detector: concurrent requests, backpressure, cancellation,
# panic isolation, graceful shutdown.
serve-check:
	$(GO) test -race ./internal/server/...

# check is the PR gate: static gates first, then build, plain tests,
# then the race passes.
check: vet fmt-check build test race serve-check

# Short smoke runs of every fuzz target (seed corpus always runs under
# plain `go test`; this adds a bounded mutation pass).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=20s ./internal/lang/
	$(GO) test -run=^$$ -fuzz=FuzzCompile$$ -fuzztime=20s ./internal/lang/
	$(GO) test -run=^$$ -fuzz=FuzzCompileNF -fuzztime=20s .
	$(GO) test -run=^$$ -fuzz=FuzzLint -fuzztime=20s ./internal/analysis/

bench-fleet:
	$(GO) test -run=^$$ -bench=BenchmarkFleetAnalyze -benchtime=5x .

# Regenerate the Insights.Report and lint golden files after
# intentional formatting changes.
update-golden:
	$(GO) test ./internal/core/ -run TestReportGolden -update
	$(GO) test ./internal/analysis/ -run TestLintGolden -update
