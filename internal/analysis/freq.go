package analysis

import (
	"fmt"
	"sort"
	"strings"

	"clara/internal/ir"
)

// Static state-access frequency estimation: how many times per packet is
// each stateful structure touched, without running any traffic? The model
// is the classic static profile — branch probabilities × loop trip
// counts:
//
//   - each function body is propagated as a DAG (back edges dropped) in
//     reverse postorder, splitting block mass 50/50 at two-way branches;
//     branch sides range analysis proves infeasible get 0 (the surviving
//     side everything), and loop-exit edges carry the full post-loop mass
//     rather than halving the body on every header test;
//   - every block inside a natural loop is multiplied by the loop's
//     inferred trip count (capped; unbounded loops get a fixed pessimistic
//     estimate), nested loops multiply;
//   - function entry frequencies flow top-down over the call graph from
//     the packet handler (callsite block frequency × caller frequency),
//     so a helper called from a hot loop is hot. Recursive SCC-internal
//     edges contribute once (the frontend forbids recursion anyway).
//
// The per-structure weights replace the uniform frequencies the §4.3
// placement ILP falls back to when no dynamic profile exists, and feed
// the offload controller's fast/slow-path capacity split.

const (
	// freqTripCap bounds a single loop's multiplier so one deep loop
	// cannot erase every other structure's weight (the ILP only needs
	// relative order, and trip bounds beyond this are budget violations
	// the linter reports separately).
	freqTripCap = 256
	// freqDefaultTrips is the multiplier assumed for loops whose trip
	// count the range analysis cannot bound.
	freqDefaultTrips = 8
)

// LoopFreq summarizes one natural loop's contribution to the static
// profile.
type LoopFreq struct {
	Fn   string
	Head int
	Pos  ir.Pos
	// Bounded/MaxTrips mirror TripCount; Trips is the multiplier actually
	// applied (capped, or the default for unbounded loops).
	Bounded  bool
	MaxTrips uint64
	Trips    float64
	// HeadFreq is the absolute frequency of the loop header (entries per
	// handler invocation × trips).
	HeadFreq float64
}

// FreqInfo is the static execution-frequency estimate for one module.
type FreqInfo struct {
	CG *CallGraph
	// FnFreq[node] is the estimated invocations of each function per
	// packet (handler = 1).
	FnFreq []float64
	// BlockFreq[node][b] is the estimated executions of each block per
	// packet.
	BlockFreq [][]float64
	// Loops lists every natural loop with its applied multiplier.
	Loops []LoopFreq
	// GlobalWeight is the estimated stateful accesses per packet, per
	// structure.
	GlobalWeight map[string]float64
}

// ComputeFreq runs the static frequency estimate over a call graph.
func ComputeFreq(cg *CallGraph) *FreqInfo {
	fi := &FreqInfo{
		CG:           cg,
		FnFreq:       make([]float64, len(cg.Funcs)),
		BlockFreq:    make([][]float64, len(cg.Funcs)),
		GlobalWeight: map[string]float64{},
	}
	local := make([][]float64, len(cg.Funcs))
	for node := range cg.Funcs {
		local[node] = fi.localFreq(node)
	}
	// Entry frequencies: roots (no in-module callers — the packet handler
	// and hand-built entry points) run once per packet; everything else
	// accumulates callsite frequency top-down in caller-first SCC order.
	for node := range cg.Funcs {
		if len(cg.Callers[node]) == 0 {
			fi.FnFreq[node] = 1
		}
	}
	sccs := cg.SCCs()
	for k := len(sccs) - 1; k >= 0; k-- {
		for _, node := range sccs[k] {
			f := cg.Funcs[node]
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op != ir.OpCall {
						continue
					}
					j := cg.CalleeNode(in)
					if j < 0 || cg.SCCOf(j) == cg.SCCOf(node) {
						continue // intrinsic, or recursion counted once
					}
					fi.FnFreq[j] += fi.FnFreq[node] * local[node][b.Index]
				}
			}
		}
	}
	for node, f := range cg.Funcs {
		fi.BlockFreq[node] = make([]float64, len(f.Blocks))
		for b := range f.Blocks {
			fi.BlockFreq[node][b] = fi.FnFreq[node] * local[node][b]
		}
	}
	// Scale loop header frequencies now that entry frequencies are known.
	for i := range fi.Loops {
		fi.Loops[i].HeadFreq *= fi.FnFreq[fi.CG.Node(fi.Loops[i].Fn)]
	}
	// Per-structure weights: one access per GLoad/GStore and per stateful
	// framework call, weighted by its block's frequency.
	for node, f := range cg.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if g := statefulGlobal(cg, in); g != "" {
					fi.GlobalWeight[g] += fi.BlockFreq[node][b.Index]
				}
			}
		}
	}
	return fi
}

// statefulGlobal returns the structure an instruction touches, or "".
func statefulGlobal(cg *CallGraph, in *ir.Instr) string {
	switch in.Op {
	case ir.OpGLoad, ir.OpGStore:
		return in.Global
	case ir.OpCall:
		if in.Global != "" && cg.CalleeNode(in) < 0 {
			return in.Global
		}
	}
	return ""
}

// localFreq propagates per-invocation block frequencies for one function
// and records its loop multipliers.
func (fi *FreqInfo) localFreq(node int) []float64 {
	c := fi.CG.CFGs[node]
	f := c.F
	ri := ComputeRanges(c)
	loops := c.NaturalLoops()

	// Loop multiplier per block: product of trips over containing loops.
	mult := make([]float64, len(f.Blocks))
	for i := range mult {
		mult[i] = 1
	}
	back := map[[2]int]bool{}
	loopBlocks := make([]map[int]bool, len(loops))
	for li, l := range loops {
		loopBlocks[li] = make(map[int]bool, len(l.Blocks))
		for _, bi := range l.Blocks {
			loopBlocks[li][bi] = true
		}
	}
	for _, l := range loops {
		tc := ri.InferTripCount(c, l)
		trips := float64(freqDefaultTrips)
		if tc.Bounded {
			n := tc.Max
			if n > freqTripCap {
				n = freqTripCap
			}
			if n < 1 {
				n = 1
			}
			trips = float64(n)
		}
		for _, bi := range l.Blocks {
			mult[bi] *= trips
		}
		for _, u := range l.Backs {
			back[[2]int{u, l.Head}] = true
		}
		fi.Loops = append(fi.Loops, LoopFreq{
			Fn: f.Name, Head: l.Head, Pos: loopPos(c, l),
			Bounded: tc.Bounded, MaxTrips: tc.Max, Trips: trips,
			HeadFreq: trips, // scaled by the DAG mass below
		})
	}

	// Acyclic propagation in RPO over forward edges. Infeasible sides get
	// zero. Loop-exit edges are special: in-loop DAG mass is per loop
	// *entry* (the trip multiplier supplies iteration count), so the exit
	// side carries the full post-loop mass and the in-loop side keeps the
	// full per-entry mass — a 50/50 split at the loop head would halve
	// every body frequency. Ordinary branches split evenly.
	exitsLoop := func(b, s int) bool {
		for li := range loops {
			if loopBlocks[li][b] && !loopBlocks[li][s] {
				return true
			}
		}
		return false
	}
	dag := make([]float64, len(f.Blocks))
	dag[0] = 1
	for _, b := range c.RPO {
		mass := dag[b]
		if mass == 0 {
			continue
		}
		var norm, exits []int
		for _, s := range c.Succs[b] {
			if back[[2]int{b, s}] || !ri.EdgeFeasible(b, s) {
				continue
			}
			if exitsLoop(b, s) {
				exits = append(exits, s)
			} else {
				norm = append(norm, s)
			}
		}
		if len(norm) > 0 {
			p := mass / float64(len(norm))
			for _, s := range norm {
				dag[s] += p
			}
		}
		if len(exits) > 0 {
			p := mass / float64(len(exits))
			for _, s := range exits {
				dag[s] += p
			}
		}
	}
	freq := make([]float64, len(f.Blocks))
	for b := range freq {
		freq[b] = dag[b] * mult[b]
	}
	// A loop header's DAG mass is its entry mass; the header actually
	// runs entry × trips times, which freq already reflects.
	for i := range fi.Loops {
		lf := &fi.Loops[i]
		if lf.Fn == f.Name {
			lf.HeadFreq = freq[lf.Head]
		}
	}
	return freq
}

// ---------------------------------------------------------------------------
// StateProfile: the merged static profile (taint × frequency) that the
// placement ILP, the offload controller, and reports consume.

// LoopProfile classifies one loop for the profile report.
type LoopProfile struct {
	Fn               string  `json:"fn"`
	Line             int     `json:"line,omitempty"`
	Col              int     `json:"col,omitempty"`
	Bounded          bool    `json:"bounded"`
	MaxTrips         uint64  `json:"max_trips,omitempty"`
	Freq             float64 `json:"freq"`
	PayloadDependent bool    `json:"payload_dependent"`
	Cause            string  `json:"cause,omitempty"`
}

// StructProfile carries one structure's static weight and key class.
type StructProfile struct {
	Name         string  `json:"name"`
	Kind         string  `json:"kind"`
	Bytes        int     `json:"bytes"`
	Weight       float64 `json:"weight"`
	Reads        int     `json:"reads"`
	Writes       int     `json:"writes"`
	PayloadKeyed bool    `json:"payload_keyed"`
	Cause        string  `json:"cause,omitempty"`
}

// StateProfile is the static per-packet profile of an element: every
// natural loop and every stateful structure, classified header-only vs
// payload-dependent and weighted by estimated access frequency.
type StateProfile struct {
	Loops   []LoopProfile   `json:"loops,omitempty"`
	Structs []StructProfile `json:"structs,omitempty"`
}

// ComputeStateProfile derives the static profile of a module.
func ComputeStateProfile(m *ir.Module) *StateProfile {
	cg := BuildCallGraph(m)
	ti := ComputeTaint(cg)
	fi := ComputeFreq(cg)
	sp := &StateProfile{}

	for _, lf := range fi.Loops {
		lp := LoopProfile{
			Fn: lf.Fn, Line: lf.Pos.Line, Col: lf.Pos.Col,
			Bounded: lf.Bounded, MaxTrips: lf.MaxTrips, Freq: lf.HeadFreq,
		}
		if lt, ok := ti.LoopClass(lf.Fn, lf.Head); ok {
			lp.PayloadDependent = lt.PayloadDependent()
			lp.Cause = lt.Cause()
		}
		sp.Loops = append(sp.Loops, lp)
	}
	sort.SliceStable(sp.Loops, func(i, j int) bool {
		a, b := sp.Loops[i], sp.Loops[j]
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})

	// Per-structure: weight from the frequency estimate, key class joined
	// over every access site.
	type acc struct {
		reads, writes int
		key           taintVal
	}
	byName := map[string]*acc{}
	for _, a := range ti.Accesses {
		st := byName[a.Global]
		if st == nil {
			st = &acc{}
			byName[a.Global] = st
		}
		if a.Write {
			st.writes++
		} else {
			st.reads++
		}
		st.key = joinTaint(st.key, a.Key)
	}
	for _, g := range m.Globals {
		st := byName[g.Name]
		if st == nil {
			st = &acc{}
		}
		prof := StructProfile{
			Name: g.Name, Kind: g.Kind.String(), Bytes: g.SizeBytes(),
			Weight: fi.GlobalWeight[g.Name],
			Reads:  st.reads, Writes: st.writes,
			PayloadKeyed: st.key.t.Has(TaintPayload),
		}
		if st.reads+st.writes > 0 {
			prof.Cause = causeString(st.key)
		}
		sp.Structs = append(sp.Structs, prof)
	}
	return sp
}

// GlobalFreq returns the per-structure access weights in the shape the
// placement ILP consumes (a structure with zero estimated accesses keeps
// a small floor so placement still considers it).
func (sp *StateProfile) GlobalFreq() map[string]float64 {
	out := make(map[string]float64, len(sp.Structs))
	for _, s := range sp.Structs {
		w := s.Weight
		if w <= 0 {
			w = 0.01
		}
		out[s.Name] = w
	}
	return out
}

// HeaderOnlyShare estimates the fraction of stateful access weight whose
// keys a header-only fast path could compute: weight on structures never
// keyed by payload, over total weight. Stateless elements (no accesses)
// report 1.
func (sp *StateProfile) HeaderOnlyShare() float64 {
	total, header := 0.0, 0.0
	for _, s := range sp.Structs {
		total += s.Weight
		if !s.PayloadKeyed {
			header += s.Weight
		}
	}
	if total == 0 {
		return 1
	}
	return header / total
}

// PayloadLoops counts loops whose bounds depend on payload bytes.
func (sp *StateProfile) PayloadLoops() int {
	n := 0
	for _, l := range sp.Loops {
		if l.PayloadDependent {
			n++
		}
	}
	return n
}

// RenderTaint formats the classification view — every loop and structure
// tagged header-only vs payload-dependent with its cause. Stable and
// frequency-free, so taint goldens don't churn when the frequency model
// is tuned.
func (sp *StateProfile) RenderTaint() string {
	var b strings.Builder
	for _, l := range sp.Loops {
		class := "header-only"
		if l.PayloadDependent {
			class = "payload-dependent"
		}
		bound := "unbounded"
		if l.Bounded {
			bound = fmt.Sprintf("max=%d", l.MaxTrips)
		}
		fmt.Fprintf(&b, "loop %s:%d:%d %s class=%s", l.Fn, l.Line, l.Col, bound, class)
		if l.Cause != "" {
			fmt.Fprintf(&b, " (%s)", l.Cause)
		}
		b.WriteByte('\n')
	}
	for _, s := range sp.Structs {
		class := "header-only"
		if s.PayloadKeyed {
			class = "payload-dependent"
		}
		fmt.Fprintf(&b, "state %s kind=%s bytes=%d reads=%d writes=%d class=%s",
			s.Name, s.Kind, s.Bytes, s.Reads, s.Writes, class)
		if s.Cause != "" {
			fmt.Fprintf(&b, " (%s)", s.Cause)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFreq formats the frequency view: per-loop applied trip
// multipliers and per-structure static access weights.
func (sp *StateProfile) RenderFreq() string {
	var b strings.Builder
	for _, l := range sp.Loops {
		bound := "unbounded"
		if l.Bounded {
			bound = fmt.Sprintf("max=%d", l.MaxTrips)
		}
		fmt.Fprintf(&b, "loop %s:%d:%d %s freq=%s\n", l.Fn, l.Line, l.Col, bound, fmtFreq(l.Freq))
	}
	for _, s := range sp.Structs {
		fmt.Fprintf(&b, "state %s weight=%s\n", s.Name, fmtFreq(s.Weight))
	}
	return b.String()
}

// Render formats the full profile (classification + frequencies) for
// reports.
func (sp *StateProfile) Render() string {
	var b strings.Builder
	for _, l := range sp.Loops {
		class := "header-only"
		if l.PayloadDependent {
			class = "payload-dependent"
		}
		bound := "unbounded"
		if l.Bounded {
			bound = fmt.Sprintf("max=%d", l.MaxTrips)
		}
		fmt.Fprintf(&b, "loop %s:%d:%d %s freq=%s class=%s", l.Fn, l.Line, l.Col, bound, fmtFreq(l.Freq), class)
		if l.Cause != "" {
			fmt.Fprintf(&b, " (%s)", l.Cause)
		}
		b.WriteByte('\n')
	}
	for _, s := range sp.Structs {
		class := "header-only"
		if s.PayloadKeyed {
			class = "payload-dependent"
		}
		fmt.Fprintf(&b, "state %s kind=%s bytes=%d weight=%s reads=%d writes=%d class=%s",
			s.Name, s.Kind, s.Bytes, fmtFreq(s.Weight), s.Reads, s.Writes, class)
		if s.Cause != "" {
			fmt.Fprintf(&b, " (%s)", s.Cause)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// fmtFreq renders a frequency with enough digits to be stable and short.
func fmtFreq(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
