// Memory planner: run the state-placement ILP (§4.3) and the coalescing
// clustering (§4.4) for one NF, then measure each decision's effect on the
// simulated NIC.
package main

import (
	"fmt"
	"log"

	"clara"
	"clara/internal/core"
)

func main() {
	e := clara.GetElement("udpcount")
	mod, err := e.Module()
	if err != nil {
		log.Fatal(err)
	}
	params := clara.DefaultParams()
	wl := clara.SmallFlows
	ps := core.ProfileSetup{Setup: e.Setup}

	// Workload-specific host profile (reverse-ported semantics).
	prof, err := core.ProfileOnHost(mod, ps, wl, 1500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stateful access frequencies (per packet):")
	for _, g := range mod.Globals {
		fmt.Printf("  %-12s %6.2f   (%d bytes)\n", g.Name, prof.GlobalFreq[g.Name], g.SizeBytes())
	}

	placement, err := core.SuggestPlacement(mod, prof, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nILP placement:")
	for _, g := range mod.Globals {
		fmt.Printf("  %-12s -> %s\n", g.Name, placement[g.Name])
	}
	packs := core.SuggestPacks(mod, prof, core.CoalesceConfig{Seed: 3})
	fmt.Println("\ncoalescing packs:")
	for i, p := range packs {
		fmt.Printf("  pack %d: %v\n", i, p)
	}

	measure := func(label string, nf *clara.NF) {
		r, err := clara.Simulate(params, nf, wl, 3000, 24)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %.2f Mpps  %.2f us\n", label, r.ThroughputMpps, r.AvgLatencyUs)
	}
	fmt.Println("\nmeasured on 24 cores, small flows:")
	measure("naive (all EMEM)", &clara.NF{Name: "naive", Mod: mod, Setup: e.Setup})
	measure("placement only", &clara.NF{Name: "placed", Mod: mod, Setup: e.Setup, Placement: placement})
	measure("placement+coalescing", &clara.NF{
		Name: "planned", Mod: mod, Setup: e.Setup, Placement: placement, Packs: packs,
	})
}
