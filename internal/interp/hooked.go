package interp

// Hooked-flavor lowering. Hook traces are part of the backend's
// determinism contract, so this flavor compiles strictly 1:1 — no
// fusion — with each instruction's hook callouts reproduced in the
// reference loop's order. Counters may be attached alongside hooks, so
// unlike the counting flavor (which assumes m.ctr non-nil) these
// closures nil-check both at run time, exactly like the reference loop.

// hookedHead fires the block-entry events: OnBlock, then OnCompute if
// the block has compute instructions. The trampoline has already
// incremented the block counter.
func hookedHead(p *program, bi int) cOp {
	nc := p.blocks[bi].nCompute
	return func(m *Machine, vs []uint64) {
		if m.hooks.OnBlock != nil {
			m.hooks.OnBlock(bi)
		}
		if m.hooks.OnCompute != nil && nc > 0 {
			m.hooks.OnCompute(bi, nc)
		}
	}
}

// hookedOp compiles one instruction for the hooked flavor.
func hookedOp(p *program, in *cInstr, bi int) cOp {
	nb := len(p.blocks)
	switch in.op {
	case xLLoad:
		id, s := in.id, in.slot
		return func(m *Machine, vs []uint64) {
			vs[id] = vs[s]
			if m.hooks.OnLocal != nil {
				m.hooks.OnLocal(false, bi)
			}
		}
	case xLStore:
		a0, s, mask := in.a0, in.slot, in.mask
		return func(m *Machine, vs []uint64) {
			vs[s] = vs[a0] & mask
			if m.hooks.OnLocal != nil {
				m.hooks.OnLocal(true, bi)
			}
		}
	case xGLoadS:
		id, gi := in.id, in.gidx
		name := p.strs[in.sidx].global
		k := int(gi)*nb + bi
		return func(m *Machine, vs []uint64) {
			vs[id] = m.gl[gi].scalar
			if m.ctr != nil {
				m.ctr.State[k]++
			}
			if m.hooks.OnState != nil {
				m.hooks.OnState(name, false, 0, bi)
			}
		}
	case xGStoreS:
		a0, gi, mask := in.a0, in.gidx, in.mask
		name := p.strs[in.sidx].global
		k := int(gi)*nb + bi
		return func(m *Machine, vs []uint64) {
			m.gl[gi].scalar = vs[a0] & mask
			if m.ctr != nil {
				m.ctr.State[k]++
			}
			if m.hooks.OnState != nil {
				m.hooks.OnState(name, true, 0, bi)
			}
		}
	case xGLoadAP:
		id, a0, gi := in.id, in.a0, in.gidx
		amask := uint64(p.gmeta[gi].len - 1)
		name := p.strs[in.sidx].global
		k := int(gi)*nb + bi
		return func(m *Machine, vs []uint64) {
			idx := vs[a0] & amask
			vs[id] = m.gl[gi].array[idx]
			if m.ctr != nil {
				m.ctr.State[k]++
			}
			if m.hooks.OnState != nil {
				m.hooks.OnState(name, false, idx, bi)
			}
		}
	case xGLoadA:
		id, a0, gi := in.id, in.a0, in.gidx
		alen := uint64(p.gmeta[gi].len)
		name := p.strs[in.sidx].global
		k := int(gi)*nb + bi
		return func(m *Machine, vs []uint64) {
			idx := vs[a0] % alen
			vs[id] = m.gl[gi].array[idx]
			if m.ctr != nil {
				m.ctr.State[k]++
			}
			if m.hooks.OnState != nil {
				m.hooks.OnState(name, false, idx, bi)
			}
		}
	case xGStoreAP:
		a0, a1, gi, mask := in.a0, in.a1, in.gidx, in.mask
		amask := uint64(p.gmeta[gi].len - 1)
		name := p.strs[in.sidx].global
		k := int(gi)*nb + bi
		return func(m *Machine, vs []uint64) {
			idx := vs[a1] & amask
			m.gl[gi].array[idx] = vs[a0] & mask
			if m.ctr != nil {
				m.ctr.State[k]++
			}
			if m.hooks.OnState != nil {
				m.hooks.OnState(name, true, idx, bi)
			}
		}
	case xGStoreA:
		a0, a1, gi, mask := in.a0, in.a1, in.gidx, in.mask
		alen := uint64(p.gmeta[gi].len)
		name := p.strs[in.sidx].global
		k := int(gi)*nb + bi
		return func(m *Machine, vs []uint64) {
			idx := vs[a1] % alen
			m.gl[gi].array[idx] = vs[a0] & mask
			if m.ctr != nil {
				m.ctr.State[k]++
			}
			if m.hooks.OnState != nil {
				m.hooks.OnState(name, true, idx, bi)
			}
		}
	case xCallPayload:
		id, a0 := in.id, in.a0
		callee, global := p.strs[in.sidx].callee, p.strs[in.sidx].global
		return func(m *Machine, vs []uint64) {
			if i := vs[a0]; i < uint64(len(m.pkt.Payload)) {
				vs[id] = uint64(m.pkt.Payload[i])
			} else {
				vs[id] = 0
			}
			if m.hooks.OnAPI != nil {
				m.hooks.OnAPI(callee, global, 0, 0, bi)
			}
		}
	case xCallSetPayload:
		a0, a1 := in.a0, in.a1
		callee, global := p.strs[in.sidx].callee, p.strs[in.sidx].global
		return func(m *Machine, vs []uint64) {
			if i := vs[a0]; i < uint64(len(m.pkt.Payload)) {
				m.pkt.Payload[i] = byte(vs[a1])
			}
			if m.hooks.OnAPI != nil {
				m.hooks.OnAPI(callee, global, 0, 0, bi)
			}
		}
	case xCallHash32:
		id, a0 := in.id, in.a0
		callee, global := p.strs[in.sidx].callee, p.strs[in.sidx].global
		return func(m *Machine, vs []uint64) {
			vs[id] = uint64(Hash32(vs[a0]))
			if m.hooks.OnAPI != nil {
				m.hooks.OnAPI(callee, global, 0, 0, bi)
			}
		}
	case xCall:
		// Machine.call fires the API hooks and counters itself.
		return genericCall(in, bi)
	default:
		return aluOp(in)
	}
}
