package interp

import "clara/internal/ir"

// This file lowers a compiled program (the flat cInstr form) into
// direct-threaded closure code: each basic block becomes a []cOp of Go
// closures plus a cTerm terminator, with every operand index, global
// slot, pow2 mask, constant, and branch target captured in the closure
// environment at compile time. Executing a block is then a bare loop of
// indirect calls — no opcode switch, no per-instruction branching on
// hook presence. The value and slot arrays are passed to each closure as
// arguments (see cOp) so bodies address them out of registers.
//
// Fusion. Adjacent instructions in hot shapes (local loads feeding an
// ALU op, ALU op feeding a local store, payload-byte read feeding
// compute, hash32 feeding the table-index mask/mod, pow2 array
// load-modify-store) collapse into one superinstruction closure. All
// fused bodies are written in "write-through" style: every constituent
// instruction still writes its result to its IR value slot before the
// next constituent reads its operands from the value array. That makes
// fusion correct for *any* adjacent instructions of the right opcode
// shape — no use-def matching is needed, downstream instructions observe
// exactly the unfused state, and what fusion buys is the elimination of
// per-instruction indirect calls (the dominant cost once dispatch is
// threaded). Fuel, Steps, and OnCompute charge by source IR count
// (tBlock.size), so fusion never changes the observable cost model.
//
// Flavors. The plain flavor carries no observability code at all; the
// counting flavor bakes each global access's flat counter index
// (gidx*NBlocks+block) into its closure as a captured constant; the
// hooked flavor is compiled strictly 1:1 (no fusion) with the reference
// loop's hook callouts reproduced per instruction, so hook traces are
// ordered identically. Heavy APIs — maps, vectors, and any call whose
// counter charge depends on runtime probe counts — always go through
// Machine.call, which is shared verbatim with the reference loop.
//
// Validation. compileThreaded statically rejects anything whose runtime
// error or panic behavior it would have to reproduce dynamically: blocks
// without a proper final terminator (or with a terminator mid-block),
// map/vec APIs aimed at the wrong global kind, and zero-length modulo
// arrays. Declining returns nil and the machine permanently falls back
// to the reference loop for that module, which reports those errors with
// its own wording — so the threaded path never needs an error check per
// instruction, only the per-block m.err gate after Machine.call ops.

// compileThreaded lowers p for one flavor, or returns nil if any block
// fails static validation (callers fall back to the reference loop).
func compileThreaded(p *program, fl tFlavor) *threaded {
	cross := crossReads(p)
	t := &threaded{blocks: make([]tBlock, len(p.blocks))}
	for bi := range p.blocks {
		tb, ok := threadBlock(p, bi, fl, cross)
		if !ok {
			return nil
		}
		t.blocks[bi] = tb
	}
	if fl != fHooked {
		attachCycles(p, t, fl, cross)
	}
	return t
}

// lowerBlock returns block bi's instruction sequence exactly as the
// plain or counting flavor executes it: operands remapped into the
// combined register space and local loads elided. Only valid after
// every block passed threadBlock's validation.
func lowerBlock(p *program, bi int, fl tFlavor, cross map[int32]bool) []cInstr {
	return lvnBlock(p, remapInstrs(p, p.blocks[bi].instrs, fl), cross, fl == fCounting)
}

func threadBlock(p *program, bi int, fl tFlavor, cross map[int32]bool) (tBlock, bool) {
	cb := &p.blocks[bi]
	tb := tBlock{size: cb.size}
	n := len(cb.instrs)
	if n == 0 {
		return tb, false
	}
	for i := range cb.instrs {
		if !validInstr(p, &cb.instrs[i], i == n-1) {
			return tb, false
		}
	}
	counting := fl == fCounting
	instrs := remapInstrs(p, cb.instrs, fl)
	if fl != fHooked {
		instrs = lvnBlock(p, instrs, cross, counting)
	}
	body := instrs[:len(instrs)-1]
	switch fl {
	case fHooked:
		tb.head = hookedHead(p, bi)
		for i := range body {
			tb.ops = append(tb.ops, hookedOp(p, &body[i], bi))
		}
	default:
		if rt := chainRunAll(p, body, &instrs[len(instrs)-1], bi, counting); rt != nil {
			// Whole block in one closure; ops/term/chk are never consulted
			// (chainStep admits no Machine.call ops, so chk is vacuous).
			tb.runAll = rt
			return tb, true
		}
		for i := 0; i < len(body); {
			if op, adv := fuseOps(p, body, i, bi, counting); op != nil {
				tb.ops = append(tb.ops, op)
				i += adv
				continue
			}
			tb.ops = append(tb.ops, plainOp(p, &body[i], bi, counting))
			i++
		}
	}
	for i := range body {
		if routesViaCall(&body[i], fl) {
			tb.chk = true
			break
		}
	}
	tb.term = termOp(&instrs[len(instrs)-1])
	return tb, true
}

// vsOff is where the vals space (instruction results + const pool)
// begins inside the machine's combined register array; local slots
// occupy [0, vsOff). Machines always allocate at least one slot cell.
func (p *program) vsOff() int32 {
	if p.nslots == 0 {
		return 1
	}
	return int32(p.nslots)
}

// routesViaCall reports whether the threaded backend executes in through
// Machine.call (which addresses m.vals directly and fires its own
// counters and hooks). Such instructions keep their original vals-space
// operand encoding; everything else is remapped into the combined
// register space. Must agree with callOp and hookedOp.
func routesViaCall(in *cInstr, fl tFlavor) bool {
	if in.op != xCall {
		return false
	}
	if fl == fHooked {
		return true
	}
	switch in.api {
	case apiMapFind, apiMapContains, apiMapInsert, apiMapRemove, apiMapSize,
		apiVecPush, apiVecGet, apiVecSet, apiVecDelete, apiVecLen:
		return true
	case apiCsumUpdate, apiCRC32HW:
		return fl == fCounting && in.gidx >= 0
	}
	return false
}

// crossReads returns the set of vals-space cells read by more than one
// block. A local load whose result cell is only ever read inside its own
// block is a candidate for elision by lvnBlock; one read elsewhere
// disqualifies it. Operand fields are scanned blanket-style (including
// fields an op does not actually read) — that can only over-approximate,
// which keeps loads, never drops them.
func crossReads(p *program) map[int32]bool {
	seen := make(map[int32]int)
	cross := make(map[int32]bool)
	for b := range p.blocks {
		for i := range p.blocks[b].instrs {
			in := &p.blocks[b].instrs[i]
			for _, c := range [2]int32{in.a0, in.a1} {
				if fb, ok := seen[c]; ok && fb != b {
					cross[c] = true
				} else {
					seen[c] = b
				}
			}
		}
	}
	return cross
}

// remapInstrs copies a block's instructions with every vals-space
// operand offset into the combined register space (slot cells keep their
// indices; value and const cells shift up by vsOff). Instructions routed
// through Machine.call are left untouched — call reads m.vals with the
// original encoding, and the two views share cells. Offsetting a field
// an op never reads is harmless; no emitted closure touches it.
func remapInstrs(p *program, src []cInstr, fl tFlavor) []cInstr {
	off := p.vsOff()
	out := make([]cInstr, len(src))
	copy(out, src)
	for i := range out {
		in := &out[i]
		if routesViaCall(in, fl) {
			continue
		}
		in.id += off
		in.a0 += off
		in.a1 += off
	}
	return out
}

// lvnBlock elides local loads. In the plain and counting flavors local
// slot traffic is unobservable (no OnLocal hooks, no counters, and fuel
// and Steps charge by tBlock.size regardless), so a load whose result is
// only consumed inside this block need not execute at all: its consumers
// read the slot cell directly. The load is materialized late only where
// its elision would be visible — before a store that overwrites the slot
// while the loaded value still has uses, and before a Machine.call
// instruction that reads the cell through m.vals. Loads whose result
// escapes the block (crossReads) are kept. Runs on the remapped copy and
// returns a possibly shorter instruction sequence, terminator included.
func lvnBlock(p *program, instrs []cInstr, cross map[int32]bool, counting bool) []cInstr {
	fl := fPlain
	if counting {
		fl = fCounting
	}
	off := p.vsOff()
	// lastUse[c] is the last position reading cell c (blanket over
	// operand fields: over-approximation only keeps loads alive longer).
	lastUse := make(map[int32]int)
	// firstUse guards the degenerate use-before-def pattern: if a cell is
	// read earlier in the block than the load defining it, eliding the
	// load would clobber a value carried from a prior iteration.
	firstUse := make(map[int32]int)
	use := func(c int32, i int) {
		lastUse[c] = i
		if _, ok := firstUse[c]; !ok {
			firstUse[c] = i
		}
	}
	for i := range instrs {
		in := &instrs[i]
		if routesViaCall(in, fl) {
			if in.nargs > 0 {
				use(in.a0+off, i)
			}
			if in.nargs > 1 {
				use(in.a1+off, i)
			}
			continue
		}
		use(in.a0, i)
		use(in.a1, i)
	}
	alias := make(map[int32]int32)    // value cell -> slot cell holding the same value
	bySlot := make(map[int32][]int32) // slot cell -> aliased value cells
	out := make([]cInstr, 0, len(instrs))
	// materialize emits the deferred load for cell v now (reading slot s
	// while it still holds the value) and retires the alias.
	materialize := func(v, s int32) {
		out = append(out, cInstr{op: xLLoad, id: v, slot: s, sidx: -1})
		delete(alias, v)
	}
	for i := range instrs {
		in := instrs[i]
		if routesViaCall(&in, fl) {
			if in.nargs > 0 {
				if s, ok := alias[in.a0+off]; ok {
					materialize(in.a0+off, s)
				}
			}
			if in.nargs > 1 {
				if s, ok := alias[in.a1+off]; ok {
					materialize(in.a1+off, s)
				}
			}
			out = append(out, in)
			continue
		}
		if s, ok := alias[in.a0]; ok {
			in.a0 = s
		}
		if s, ok := alias[in.a1]; ok {
			in.a1 = s
		}
		switch in.op {
		case xLLoad:
			v := in.id
			if fu, used := firstUse[v]; !cross[v-off] && (!used || fu >= i) {
				alias[v] = in.slot
				bySlot[in.slot] = append(bySlot[in.slot], v)
				continue
			}
			out = append(out, in)
		case xLStore:
			s := in.slot
			for _, v := range bySlot[s] {
				if cur, ok := alias[v]; ok && cur == s {
					if lastUse[v] > i {
						materialize(v, s)
					} else {
						delete(alias, v)
					}
				}
			}
			delete(bySlot, s)
			out = append(out, in)
		default:
			out = append(out, in)
		}
	}
	return out
}

func isTerm(op xop) bool {
	return op == xBr || op == xCondBr || op == xRet || op == xCmpBr
}

// validInstr rejects instructions the threaded backend cannot execute
// without dynamic error handling; see the file comment.
func validInstr(p *program, in *cInstr, last bool) bool {
	if isTerm(in.op) != last {
		return false
	}
	switch in.op {
	case xGLoadS, xGStoreS, xGLoadAP, xGStoreAP:
		return in.gidx >= 0
	case xGLoadA, xGStoreA:
		return in.gidx >= 0 && p.gmeta[in.gidx].len > 0
	case xCall:
		switch in.api {
		case apiMapFind, apiMapContains, apiMapInsert, apiMapRemove, apiMapSize:
			return in.gidx >= 0 && p.gmeta[in.gidx].kind == ir.GMap
		case apiVecPush, apiVecGet, apiVecSet, apiVecDelete, apiVecLen:
			return in.gidx >= 0 && p.gmeta[in.gidx].kind == ir.GVec
		}
	}
	return true
}

// termOp compiles the block terminator. Branch targets are captured
// constants; xCmpBr still writes its comparison result before branching,
// exactly like the reference loop.
func termOp(in *cInstr) cTerm {
	switch in.op {
	case xRet:
		return func(m *Machine, vs []uint64) int32 { return retSignal }
	case xBr:
		t := in.t
		return func(m *Machine, vs []uint64) int32 { return t }
	case xCondBr:
		a0, t, f := in.a0, in.t, in.f
		return func(m *Machine, vs []uint64) int32 {
			if vs[a0] != 0 {
				return t
			}
			return f
		}
	case xCmpBr:
		id, a0, a1, t, f := in.id, in.a0, in.a1, in.t, in.f
		switch in.pred {
		case ir.PredEQ:
			return func(m *Machine, vs []uint64) int32 {
				if vs[a0] == vs[a1] {
					vs[id] = 1
					return t
				}
				vs[id] = 0
				return f
			}
		case ir.PredNE:
			return func(m *Machine, vs []uint64) int32 {
				if vs[a0] != vs[a1] {
					vs[id] = 1
					return t
				}
				vs[id] = 0
				return f
			}
		case ir.PredULT:
			return func(m *Machine, vs []uint64) int32 {
				if vs[a0] < vs[a1] {
					vs[id] = 1
					return t
				}
				vs[id] = 0
				return f
			}
		case ir.PredULE:
			return func(m *Machine, vs []uint64) int32 {
				if vs[a0] <= vs[a1] {
					vs[id] = 1
					return t
				}
				vs[id] = 0
				return f
			}
		case ir.PredUGT:
			return func(m *Machine, vs []uint64) int32 {
				if vs[a0] > vs[a1] {
					vs[id] = 1
					return t
				}
				vs[id] = 0
				return f
			}
		case ir.PredUGE:
			return func(m *Machine, vs []uint64) int32 {
				if vs[a0] >= vs[a1] {
					vs[id] = 1
					return t
				}
				vs[id] = 0
				return f
			}
		default:
			// Unknown predicate compares false, like cmpPred.
			return func(m *Machine, vs []uint64) int32 {
				vs[id] = 0
				return f
			}
		}
	}
	return nil // unreachable: validInstr guarantees a terminator
}

// ctrIdx returns the flat counter index a counting-flavor closure bakes
// in, or -1 when the flavor does not count.
func ctrIdx(p *program, gidx int32, bi int, counting bool) int {
	if !counting {
		return -1
	}
	return int(gidx)*len(p.blocks) + bi
}

// genericCall routes an instruction through Machine.call — the exact
// code the reference loop runs, including emitAPI's counter and hook
// behavior. Validation guarantees call cannot fail for threaded-compiled
// modules; the m.err gate in runThreaded is belt and braces.
func genericCall(in *cInstr, bi int) cOp {
	return func(m *Machine, vs []uint64) {
		if err := m.call(in, bi); err != nil {
			m.err = err
		}
	}
}

// plainOp compiles one instruction for the plain or counting flavor.
func plainOp(p *program, in *cInstr, bi int, counting bool) cOp {
	switch in.op {
	case xLLoad:
		id, s := in.id, in.slot
		return func(m *Machine, vs []uint64) { vs[id] = vs[s] }
	case xLStore:
		a0, s, mask := in.a0, in.slot, in.mask
		return func(m *Machine, vs []uint64) { vs[s] = vs[a0] & mask }
	case xGLoadS:
		id, gi := in.id, in.gidx
		if k := ctrIdx(p, gi, bi, counting); k >= 0 {
			return func(m *Machine, vs []uint64) {
				vs[id] = m.gl[gi].scalar
				m.ctr.State[k]++
			}
		}
		return func(m *Machine, vs []uint64) { vs[id] = m.gl[gi].scalar }
	case xGStoreS:
		a0, gi, mask := in.a0, in.gidx, in.mask
		if k := ctrIdx(p, gi, bi, counting); k >= 0 {
			return func(m *Machine, vs []uint64) {
				m.gl[gi].scalar = vs[a0] & mask
				m.ctr.State[k]++
			}
		}
		return func(m *Machine, vs []uint64) { m.gl[gi].scalar = vs[a0] & mask }
	case xGLoadAP:
		id, a0, gi := in.id, in.a0, in.gidx
		amask := uint64(p.gmeta[gi].len - 1)
		if k := ctrIdx(p, gi, bi, counting); k >= 0 {
			return func(m *Machine, vs []uint64) {
				vs[id] = m.gl[gi].array[vs[a0]&amask]
				m.ctr.State[k]++
			}
		}
		return func(m *Machine, vs []uint64) { vs[id] = m.gl[gi].array[vs[a0]&amask] }
	case xGLoadA:
		id, a0, gi := in.id, in.a0, in.gidx
		alen := uint64(p.gmeta[gi].len)
		if k := ctrIdx(p, gi, bi, counting); k >= 0 {
			return func(m *Machine, vs []uint64) {
				vs[id] = m.gl[gi].array[vs[a0]%alen]
				m.ctr.State[k]++
			}
		}
		return func(m *Machine, vs []uint64) { vs[id] = m.gl[gi].array[vs[a0]%alen] }
	case xGStoreAP:
		a0, a1, gi, mask := in.a0, in.a1, in.gidx, in.mask
		amask := uint64(p.gmeta[gi].len - 1)
		if k := ctrIdx(p, gi, bi, counting); k >= 0 {
			return func(m *Machine, vs []uint64) {
				m.gl[gi].array[vs[a1]&amask] = vs[a0] & mask
				m.ctr.State[k]++
			}
		}
		return func(m *Machine, vs []uint64) { m.gl[gi].array[vs[a1]&amask] = vs[a0] & mask }
	case xGStoreA:
		a0, a1, gi, mask := in.a0, in.a1, in.gidx, in.mask
		alen := uint64(p.gmeta[gi].len)
		if k := ctrIdx(p, gi, bi, counting); k >= 0 {
			return func(m *Machine, vs []uint64) {
				m.gl[gi].array[vs[a1]%alen] = vs[a0] & mask
				m.ctr.State[k]++
			}
		}
		return func(m *Machine, vs []uint64) { m.gl[gi].array[vs[a1]%alen] = vs[a0] & mask }
	case xCallPayload:
		id, a0 := in.id, in.a0
		return func(m *Machine, vs []uint64) {
			if i := vs[a0]; i < uint64(len(m.pkt.Payload)) {
				vs[id] = uint64(m.pkt.Payload[i])
			} else {
				vs[id] = 0
			}
		}
	case xCallSetPayload:
		a0, a1 := in.a0, in.a1
		return func(m *Machine, vs []uint64) {
			if i := vs[a0]; i < uint64(len(m.pkt.Payload)) {
				m.pkt.Payload[i] = byte(vs[a1])
			}
		}
	case xCallHash32:
		id, a0 := in.id, in.a0
		return func(m *Machine, vs []uint64) { vs[id] = uint64(Hash32(vs[a0])) }
	case xCall:
		return callOp(in, bi, counting)
	default:
		return aluOp(in)
	}
}

// callOp specializes the light framework APIs — packet field accessors,
// intrinsics with compile-time-known (zero) probe charges — and routes
// everything whose counter charge depends on runtime state through
// Machine.call.
func callOp(in *cInstr, bi int, counting bool) cOp {
	id, a0, a1 := in.id, in.a0, in.a1
	switch in.api {
	case apiPktLen:
		return func(m *Machine, vs []uint64) { vs[id] = uint64(m.pkt.Len) }
	case apiEthType:
		return func(m *Machine, vs []uint64) { vs[id] = uint64(m.pkt.EthType) }
	case apiIPProto:
		return func(m *Machine, vs []uint64) { vs[id] = uint64(m.pkt.Proto) }
	case apiIPSrc:
		return func(m *Machine, vs []uint64) { vs[id] = uint64(m.pkt.SrcIP) }
	case apiIPDst:
		return func(m *Machine, vs []uint64) { vs[id] = uint64(m.pkt.DstIP) }
	case apiIPTTL:
		return func(m *Machine, vs []uint64) { vs[id] = uint64(m.pkt.TTL) }
	case apiIPLen:
		return func(m *Machine, vs []uint64) { vs[id] = uint64(m.pkt.IPLen) }
	case apiIPHL:
		return func(m *Machine, vs []uint64) { vs[id] = uint64(m.pkt.IPHL) }
	case apiTCPSport, apiUDPSport:
		return func(m *Machine, vs []uint64) { vs[id] = uint64(m.pkt.SrcPort) }
	case apiTCPDport, apiUDPDport:
		return func(m *Machine, vs []uint64) { vs[id] = uint64(m.pkt.DstPort) }
	case apiTCPSeq:
		return func(m *Machine, vs []uint64) { vs[id] = uint64(m.pkt.Seq) }
	case apiTCPAck:
		return func(m *Machine, vs []uint64) { vs[id] = uint64(m.pkt.Ack) }
	case apiTCPFlags:
		return func(m *Machine, vs []uint64) { vs[id] = uint64(m.pkt.TCPFlag) }
	case apiTCPOff:
		return func(m *Machine, vs []uint64) { vs[id] = uint64(m.pkt.TCPOff) }
	case apiPayloadLen:
		return func(m *Machine, vs []uint64) { vs[id] = uint64(len(m.pkt.Payload)) }
	case apiTime:
		return func(m *Machine, vs []uint64) { vs[id] = m.pkt.Time }
	case apiSetIPSrc:
		return func(m *Machine, vs []uint64) { m.pkt.SrcIP = uint32(vs[a0]) }
	case apiSetIPDst:
		return func(m *Machine, vs []uint64) { m.pkt.DstIP = uint32(vs[a0]) }
	case apiSetIPTTL:
		return func(m *Machine, vs []uint64) { m.pkt.TTL = uint8(vs[a0]) }
	case apiSetTCPSport, apiSetUDPSport:
		return func(m *Machine, vs []uint64) { m.pkt.SrcPort = uint16(vs[a0]) }
	case apiSetTCPDport, apiSetUDPDport:
		return func(m *Machine, vs []uint64) { m.pkt.DstPort = uint16(vs[a0]) }
	case apiSetTCPSeq:
		return func(m *Machine, vs []uint64) { m.pkt.Seq = uint32(vs[a0]) }
	case apiSetTCPAck:
		return func(m *Machine, vs []uint64) { m.pkt.Ack = uint32(vs[a0]) }
	case apiSetTCPFlags:
		return func(m *Machine, vs []uint64) { m.pkt.TCPFlag = uint8(vs[a0]) }
	case apiSend:
		return func(m *Machine, vs []uint64) { m.pkt.OutPort = int32(vs[a0]) }
	case apiDrop:
		return func(m *Machine, vs []uint64) { m.pkt.OutPort = -1 }
	case apiRand32:
		return func(m *Machine, vs []uint64) {
			m.rng = m.rng*6364136223846793005 + 1442695040888963407
			vs[id] = (m.rng >> 32) & 0xffffffff
		}
	case apiEwmaRate:
		return func(m *Machine, vs []uint64) {
			m.ewma += (float64(uint32(vs[a0])) - m.ewma) / 16
			vs[id] = uint64(uint32(m.ewma))
		}
	case apiLPMHW:
		return func(m *Machine, vs []uint64) { vs[id] = uint64(m.lpmLookup(uint32(vs[a0]))) }
	case apiCsumUpdate:
		// Probe charge is the packet's IP length; only countable when the
		// call is attributed to a global (it never is today, but the
		// counting flavor defers to Machine.call if one appears).
		if counting && in.gidx >= 0 {
			return genericCall(in, bi)
		}
		return func(m *Machine, vs []uint64) { m.pkt.CsumUpdated = true }
	case apiCRC32HW:
		if counting && in.gidx >= 0 {
			return genericCall(in, bi)
		}
		return func(m *Machine, vs []uint64) {
			vs[id] = uint64(CRC32(m.pkt.Payload, int(vs[a0]), int(vs[a1])))
		}
	default:
		// Maps and vectors: probe counts, addresses, and semantics depend
		// on runtime state and map mode — shared with the reference loop.
		return genericCall(in, bi)
	}
}

// aluOp compiles a pure compute instruction (no flavor differences:
// compute ops carry no counters and no per-instruction hooks).
func aluOp(in *cInstr) cOp {
	id, a0, a1, mask := in.id, in.a0, in.a1, in.mask
	switch in.op {
	case xAdd:
		return func(m *Machine, vs []uint64) { vs[id] = (vs[a0] + vs[a1]) & mask }
	case xSub:
		return func(m *Machine, vs []uint64) { vs[id] = (vs[a0] - vs[a1]) & mask }
	case xMul:
		return func(m *Machine, vs []uint64) { vs[id] = (vs[a0] * vs[a1]) & mask }
	case xUDiv:
		return func(m *Machine, vs []uint64) {
			if d := vs[a1]; d == 0 {
				vs[id] = mask // all-ones, like NIC firmware
			} else {
				vs[id] = (vs[a0] / d) & mask
			}
		}
	case xURem:
		return func(m *Machine, vs []uint64) {
			if d := vs[a1]; d == 0 {
				vs[id] = 0
			} else {
				vs[id] = (vs[a0] % d) & mask
			}
		}
	case xAnd:
		return func(m *Machine, vs []uint64) { vs[id] = vs[a0] & vs[a1] & mask }
	case xOr:
		return func(m *Machine, vs []uint64) { vs[id] = (vs[a0] | vs[a1]) & mask }
	case xXor:
		return func(m *Machine, vs []uint64) { vs[id] = (vs[a0] ^ vs[a1]) & mask }
	case xShl:
		return func(m *Machine, vs []uint64) {
			sh := vs[a1] & 63
			vs[id] = (vs[a0] << sh) & mask
		}
	case xLShr:
		return func(m *Machine, vs []uint64) {
			sh := vs[a1] & 63
			vs[id] = (vs[a0] >> sh) & mask
		}
	case xNot:
		return func(m *Machine, vs []uint64) { vs[id] = ^vs[a0] & mask }
	case xMask:
		return func(m *Machine, vs []uint64) { vs[id] = vs[a0] & mask }
	case xICmp:
		switch in.pred {
		case ir.PredEQ:
			return func(m *Machine, vs []uint64) { vs[id] = b2u(vs[a0] == vs[a1]) }
		case ir.PredNE:
			return func(m *Machine, vs []uint64) { vs[id] = b2u(vs[a0] != vs[a1]) }
		case ir.PredULT:
			return func(m *Machine, vs []uint64) { vs[id] = b2u(vs[a0] < vs[a1]) }
		case ir.PredULE:
			return func(m *Machine, vs []uint64) { vs[id] = b2u(vs[a0] <= vs[a1]) }
		case ir.PredUGT:
			return func(m *Machine, vs []uint64) { vs[id] = b2u(vs[a0] > vs[a1]) }
		case ir.PredUGE:
			return func(m *Machine, vs []uint64) { vs[id] = b2u(vs[a0] >= vs[a1]) }
		default:
			return func(m *Machine, vs []uint64) { vs[id] = 0 }
		}
	}
	return nil // unreachable: plainOp/hookedOp cover every other op
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
