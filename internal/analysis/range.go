package analysis

import (
	"fmt"

	"clara/internal/ir"
)

// This file instantiates the dataflow framework as an unsigned interval
// (constant/range) propagation: every slot and every SSA value gets a
// conservative [lo, hi] range. Branch edges refine ranges (the false edge
// of `limit > 64` caps limit at 64), constant conditions make edges
// infeasible (`while (true)` has no feasible exit), and natural-loop trip
// counts fall out of the induction-variable ranges. Constants are the
// degenerate one-point intervals, so this pass subsumes constant
// propagation.

// Interval is an unsigned value range [Lo, Hi], inclusive.
type Interval struct {
	Lo, Hi uint64
}

// FullRange is the unconstrained interval.
var FullRange = Interval{0, ^uint64(0)}

// typeMax returns the largest value of ty (u64 for Void/unknown widths).
func typeMax(ty ir.Type) uint64 {
	if ty == ir.Void {
		return ^uint64(0)
	}
	bits := ty.Bits()
	if bits >= 64 {
		return ^uint64(0)
	}
	return (1 << bits) - 1
}

func typeRange(ty ir.Type) Interval { return Interval{0, typeMax(ty)} }

// Const reports whether the interval is a single value.
func (iv Interval) Const() (uint64, bool) { return iv.Lo, iv.Lo == iv.Hi }

// Union returns the smallest interval containing both.
func (iv Interval) Union(o Interval) Interval {
	if o.Lo < iv.Lo {
		iv.Lo = o.Lo
	}
	if o.Hi > iv.Hi {
		iv.Hi = o.Hi
	}
	return iv
}

// Intersect clamps iv to o; empty intersections collapse to o's nearest
// bound (callers use feasibility separately).
func (iv Interval) Intersect(o Interval) (Interval, bool) {
	if o.Lo > iv.Lo {
		iv.Lo = o.Lo
	}
	if o.Hi < iv.Hi {
		iv.Hi = o.Hi
	}
	if iv.Lo > iv.Hi {
		return iv, false
	}
	return iv, true
}

func (iv Interval) String() string {
	if c, ok := iv.Const(); ok {
		return fmt.Sprintf("[%d]", c)
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}

// rangeState is the per-point lattice value: reachability plus one
// interval per slot.
type rangeState struct {
	reachable bool
	slots     []Interval
}

func (s rangeState) clone() rangeState {
	return rangeState{reachable: s.reachable, slots: append([]Interval(nil), s.slots...)}
}

// RangeInfo is the fixpoint result of range propagation over one function.
type RangeInfo struct {
	c *CFG
	// instrByID resolves a VInstr operand to its defining instruction.
	instrByID []*ir.Instr
	blockOf   []int // defining block of each value ID
	indexOf   []int // instruction index within the block
	// vals[id] is the final over-approximate interval of each SSA value.
	vals []Interval
	sol  *Solution[rangeState]
	prob *rangeProblem
}

type rangeProblem struct {
	ri *RangeInfo
	// visits counts Transfer applications per block; past the threshold
	// the out-state is widened against the previous one to force
	// convergence of loop counters.
	visits  []int
	prevOut []rangeState
	// isHead marks natural-loop headers, the only widening points: widening
	// body blocks too would destroy loop bounds that merely oscillate as
	// edge refinements shift.
	isHead []bool
}

// widenAfter is the number of fixpoint visits before a loop header's slot
// ranges widen to full range; widenHard is the fallback for every other
// block (cycles outside natural loops can only come from irreducible
// hand-built IR).
const (
	widenAfter = 4
	widenHard  = 32
)

// ComputeRanges runs constant/range propagation over the CFG.
func ComputeRanges(c *CFG) *RangeInfo {
	ri := &RangeInfo{
		c:         c,
		instrByID: make([]*ir.Instr, c.F.NumVals),
		blockOf:   make([]int, c.F.NumVals),
		indexOf:   make([]int, c.F.NumVals),
		vals:      make([]Interval, c.F.NumVals),
	}
	for _, b := range c.F.Blocks {
		for ii, in := range b.Instrs {
			if in.ID >= 0 && in.ID < len(ri.instrByID) {
				ri.instrByID[in.ID] = in
				ri.blockOf[in.ID] = b.Index
				ri.indexOf[in.ID] = ii
			}
		}
	}
	for i := range ri.vals {
		ri.vals[i] = FullRange
	}
	p := &rangeProblem{
		ri:      ri,
		visits:  make([]int, len(c.F.Blocks)),
		prevOut: make([]rangeState, len(c.F.Blocks)),
		isHead:  make([]bool, len(c.F.Blocks)),
	}
	for _, l := range c.NaturalLoops() {
		p.isHead[l.Head] = true
	}
	ri.prob = p
	ri.sol = Solve[rangeState](c, Forward, p)
	return ri
}

func (p *rangeProblem) Boundary() rangeState {
	s := rangeState{reachable: true, slots: make([]Interval, p.ri.c.F.NSlots)}
	for i := range s.slots {
		s.slots[i] = FullRange // entry values of slots are unknown
	}
	return s
}

func (p *rangeProblem) Bottom() rangeState { return rangeState{} }

func (p *rangeProblem) Meet(a, b rangeState) rangeState {
	if !b.reachable {
		return a
	}
	if !a.reachable {
		return b.clone()
	}
	for i := range a.slots {
		a.slots[i] = a.slots[i].Union(b.slots[i])
	}
	return a
}

func (p *rangeProblem) Equal(a, b rangeState) bool {
	if a.reachable != b.reachable {
		return false
	}
	for i := range a.slots {
		if a.slots[i] != b.slots[i] {
			return false
		}
	}
	return true
}

func (p *rangeProblem) Transfer(b *ir.Block, in rangeState) rangeState {
	if !in.reachable {
		return rangeState{}
	}
	out := in.clone()
	ri := p.ri
	res := func(v ir.Value) Interval { return ri.operand(v, out.slots) }
	for _, instr := range b.Instrs {
		iv := ri.evalInstr(instr, out.slots, res)
		if instr.ID >= 0 && instr.ID < len(ri.vals) {
			ri.vals[instr.ID] = iv
		}
		if instr.Op == ir.OpLStore {
			out.slots[instr.Slot] = ri.operand(instr.Args[0], out.slots)
		}
	}
	p.visits[b.Index]++
	threshold := widenHard
	if p.isHead[b.Index] {
		threshold = widenAfter
	}
	if p.visits[b.Index] > threshold && p.prevOut[b.Index].reachable {
		prev := p.prevOut[b.Index]
		for i := range out.slots {
			if out.slots[i] != prev.slots[i] {
				out.slots[i] = FullRange
			}
		}
	}
	p.prevOut[b.Index] = out.clone()
	return out
}

// operand returns the interval of an operand under the given slot state.
func (ri *RangeInfo) operand(v ir.Value, slots []Interval) Interval {
	switch v.Kind {
	case ir.VConst:
		c := uint64(v.Const) & typeMax(v.Ty)
		return Interval{c, c}
	case ir.VParam:
		return typeRange(v.Ty)
	case ir.VInstr:
		if v.ID >= 0 && v.ID < len(ri.vals) {
			iv := ri.vals[v.ID]
			if r, ok := iv.Intersect(typeRange(v.Ty)); ok {
				return r
			}
		}
		return typeRange(v.Ty)
	}
	return FullRange
}

// evalInstr computes the result interval of one instruction, resolving
// operands through res.
func (ri *RangeInfo) evalInstr(in *ir.Instr, slots []Interval, res func(ir.Value) Interval) Interval {
	tr := typeRange(in.Ty)
	switch in.Op {
	case ir.OpLLoad:
		if r, ok := slots[in.Slot].Intersect(tr); ok {
			return r
		}
		return tr
	case ir.OpGLoad, ir.OpCall:
		return tr
	case ir.OpZExt:
		if r, ok := res(in.Args[0]).Intersect(tr); ok {
			return r
		}
		return tr
	case ir.OpTrunc:
		a := res(in.Args[0])
		if a.Hi <= tr.Hi {
			return a // narrowing preserved the value
		}
		return tr
	case ir.OpICmp:
		a, b := res(in.Args[0]), res(in.Args[1])
		if r, ok := evalICmp(in.Pred, a, b); ok {
			c := uint64(0)
			if r {
				c = 1
			}
			return Interval{c, c}
		}
		return Interval{0, 1}
	case ir.OpAdd:
		a, b := res(in.Args[0]), res(in.Args[1])
		lo, hi := a.Lo+b.Lo, a.Hi+b.Hi
		if hi < a.Hi || hi > tr.Hi { // overflow or exceeds type width
			return tr
		}
		return Interval{lo, hi}
	case ir.OpSub:
		a, b := res(in.Args[0]), res(in.Args[1])
		if a.Lo >= b.Hi { // no unsigned underflow possible
			return Interval{a.Lo - b.Hi, a.Hi - b.Lo}
		}
		return tr
	case ir.OpMul:
		a, b := res(in.Args[0]), res(in.Args[1])
		if a.Hi != 0 && b.Hi != 0 && a.Hi > tr.Hi/b.Hi { // overflow
			return tr
		}
		return Interval{a.Lo * b.Lo, a.Hi * b.Hi}
	case ir.OpUDiv:
		a, b := res(in.Args[0]), res(in.Args[1])
		if b.Lo > 0 {
			return Interval{a.Lo / b.Hi, a.Hi / b.Lo}
		}
		return tr // division by zero yields all-ones on the NIC
	case ir.OpURem:
		b := res(in.Args[1])
		if b.Hi > 0 {
			return Interval{0, b.Hi - 1}
		}
		return Interval{0, 0}
	case ir.OpAnd:
		a, b := res(in.Args[0]), res(in.Args[1])
		hi := a.Hi
		if b.Hi < hi {
			hi = b.Hi
		}
		return Interval{0, hi}
	case ir.OpOr, ir.OpXor:
		a, b := res(in.Args[0]), res(in.Args[1])
		hi := roundUpPow2(a.Hi | b.Hi)
		if hi > tr.Hi {
			hi = tr.Hi
		}
		return Interval{0, hi}
	case ir.OpShl:
		a, b := res(in.Args[0]), res(in.Args[1])
		if sh, ok := b.Const(); ok && sh < 64 {
			if a.Hi <= tr.Hi>>sh {
				return Interval{a.Lo << sh, a.Hi << sh}
			}
		}
		return tr
	case ir.OpLShr:
		a, b := res(in.Args[0]), res(in.Args[1])
		if sh, ok := b.Const(); ok && sh < 64 {
			return Interval{a.Lo >> sh, a.Hi >> sh}
		}
		return Interval{0, a.Hi}
	case ir.OpNot:
		return tr
	}
	return tr
}

// roundUpPow2 returns the smallest 2^k-1 value >= v (a sound upper bound
// for or/xor results).
func roundUpPow2(v uint64) uint64 {
	r := uint64(0)
	for r < v {
		r = r<<1 | 1
	}
	return r
}

// evalICmp decides a comparison of two intervals when they don't overlap
// ambiguously. ok=false means both outcomes are possible.
func evalICmp(p ir.Pred, a, b Interval) (res, ok bool) {
	switch p {
	case ir.PredEQ:
		if ca, okA := a.Const(); okA {
			if cb, okB := b.Const(); okB {
				return ca == cb, true
			}
		}
		if a.Hi < b.Lo || b.Hi < a.Lo {
			return false, true
		}
	case ir.PredNE:
		if r, okr := evalICmp(ir.PredEQ, a, b); okr {
			return !r, true
		}
	case ir.PredULT:
		if a.Hi < b.Lo {
			return true, true
		}
		if a.Lo >= b.Hi {
			return false, true
		}
	case ir.PredULE:
		if a.Hi <= b.Lo {
			return true, true
		}
		if a.Lo > b.Hi {
			return false, true
		}
	case ir.PredUGT:
		if r, okr := evalICmp(ir.PredULE, a, b); okr {
			return !r, true
		}
	case ir.PredUGE:
		if r, okr := evalICmp(ir.PredULT, a, b); okr {
			return !r, true
		}
	}
	return false, false
}

// TransferEdge refines the state flowing along one CFG edge: constant
// branch conditions kill infeasible edges, and comparisons against slot
// loads narrow the slot's range on each side.
func (p *rangeProblem) TransferEdge(from, to int, out rangeState) rangeState {
	if !out.reachable {
		return out
	}
	term := p.ri.c.F.Blocks[from].Terminator()
	if term == nil || term.Op != ir.OpCondBr || term.True == term.False {
		return out
	}
	takenTrue := to == term.True
	cond := term.Args[0]
	// Feasibility must be decided from the end-of-block state alone: the
	// cached value intervals can still grow after this block's out-state
	// has converged, and a stale constant would wrongly kill the edge.
	if iv, exact := p.ri.evalAt(from, cond, out.slots); exact {
		if c, ok := iv.Const(); ok && (c != 0) != takenTrue {
			return rangeState{} // edge infeasible
		}
	}
	refined := out.clone()
	p.ri.refineCond(from, cond, takenTrue, &refined)
	return refined
}

// evalAt re-evaluates v against the end-of-block slot state, walking the
// definition chain within block. ok=false means the value cannot be
// soundly reconstructed there (cross-block def, or a load whose slot was
// overwritten later in the block).
func (ri *RangeInfo) evalAt(block int, v ir.Value, slots []Interval) (Interval, bool) {
	switch v.Kind {
	case ir.VConst, ir.VParam:
		return ri.operand(v, slots), true
	case ir.VInstr:
		def := ri.instrByID[v.ID]
		if def == nil || ri.blockOf[v.ID] != block {
			return FullRange, false
		}
		switch {
		case def.Op == ir.OpLLoad:
			if ri.storedBetween(block, ri.indexOf[v.ID], def.Slot) {
				return FullRange, false
			}
			if r, ok := slots[def.Slot].Intersect(typeRange(def.Ty)); ok {
				return r, true
			}
			return typeRange(def.Ty), true
		case def.Op == ir.OpGLoad || def.Op == ir.OpCall:
			return typeRange(def.Ty), true // sound without any cached state
		case def.Op.IsCompute():
			exact := true
			iv := ri.evalInstr(def, slots, func(a ir.Value) Interval {
				r, ok := ri.evalAt(block, a, slots)
				if !ok {
					exact = false
				}
				return r
			})
			return iv, exact
		}
	}
	return FullRange, false
}

// refineCond narrows slot ranges in st under the assumption that cond
// evaluates to truth on this edge.
func (ri *RangeInfo) refineCond(block int, cond ir.Value, truth bool, st *rangeState) {
	if cond.Kind != ir.VInstr {
		return
	}
	def := ri.instrByID[cond.ID]
	if def == nil || ri.blockOf[cond.ID] != block {
		// Only same-block conditions are refined: a cross-block def could
		// be stale against interleaved stores.
		return
	}
	switch def.Op {
	case ir.OpAnd:
		if truth { // both conjuncts hold
			ri.refineCond(block, def.Args[0], true, st)
			ri.refineCond(block, def.Args[1], true, st)
		}
	case ir.OpOr:
		if !truth { // both disjuncts fail
			ri.refineCond(block, def.Args[0], false, st)
			ri.refineCond(block, def.Args[1], false, st)
		}
	case ir.OpICmp:
		pred := def.Pred
		if !truth {
			pred = pred.Negate()
		}
		lhs, rhs := def.Args[0], def.Args[1]
		if rIv, exact := ri.evalAt(block, rhs, st.slots); exact {
			if slot, idx, ok := ri.slotOperand(block, lhs); ok && !ri.storedBetween(block, idx, slot) {
				st.slots[slot] = refineInterval(st.slots[slot], pred, rIv)
			}
		}
		if lIv, exact := ri.evalAt(block, lhs, st.slots); exact {
			if slot, idx, ok := ri.slotOperand(block, rhs); ok && !ri.storedBetween(block, idx, slot) {
				st.slots[slot] = refineInterval(st.slots[slot], swapPred(pred), lIv)
			}
		}
	}
}

// slotOperand resolves an operand to the stack slot it loads (directly or
// through a zext), requiring the load to live in the given block so the
// refinement is anchored to current state.
func (ri *RangeInfo) slotOperand(block int, v ir.Value) (slot, instrIdx int, ok bool) {
	for v.Kind == ir.VInstr {
		def := ri.instrByID[v.ID]
		if def == nil || ri.blockOf[v.ID] != block {
			return 0, 0, false
		}
		switch def.Op {
		case ir.OpLLoad:
			return def.Slot, ri.indexOf[v.ID], true
		case ir.OpZExt:
			v = def.Args[0]
		default:
			return 0, 0, false
		}
	}
	return 0, 0, false
}

// storedBetween reports whether slot is stored after instruction index idx
// in block (which would invalidate an edge refinement based on the load).
func (ri *RangeInfo) storedBetween(block, idx, slot int) bool {
	instrs := ri.c.F.Blocks[block].Instrs
	for i := idx + 1; i < len(instrs); i++ {
		if instrs[i].Op == ir.OpLStore && instrs[i].Slot == slot {
			return true
		}
	}
	return false
}

// refineInterval narrows iv under `iv PRED rhs`.
func refineInterval(iv Interval, pred ir.Pred, rhs Interval) Interval {
	switch pred {
	case ir.PredULT:
		if rhs.Hi > 0 && rhs.Hi-1 < iv.Hi {
			iv.Hi = rhs.Hi - 1
		}
	case ir.PredULE:
		if rhs.Hi < iv.Hi {
			iv.Hi = rhs.Hi
		}
	case ir.PredUGT:
		if rhs.Lo < ^uint64(0) && rhs.Lo+1 > iv.Lo {
			iv.Lo = rhs.Lo + 1
		}
	case ir.PredUGE:
		if rhs.Lo > iv.Lo {
			iv.Lo = rhs.Lo
		}
	case ir.PredEQ:
		if r, ok := iv.Intersect(rhs); ok {
			return r
		}
	}
	if iv.Lo > iv.Hi { // refinement emptied the range; keep a point
		iv.Lo = iv.Hi
	}
	return iv
}

// swapPred mirrors a predicate across its operands (a PRED b == b
// swapPred(PRED) a).
func swapPred(p ir.Pred) ir.Pred {
	switch p {
	case ir.PredULT:
		return ir.PredUGT
	case ir.PredULE:
		return ir.PredUGE
	case ir.PredUGT:
		return ir.PredULT
	case ir.PredUGE:
		return ir.PredULE
	}
	return p
}

// BlockReachable reports whether range propagation found any feasible path
// to block b.
func (ri *RangeInfo) BlockReachable(b int) bool { return ri.sol.Out[b].reachable || b == 0 }

// EdgeFeasible reports whether the edge from→to can be taken under the
// computed ranges.
func (ri *RangeInfo) EdgeFeasible(from, to int) bool {
	out := ri.sol.Out[from]
	if !out.reachable {
		return false
	}
	return ri.prob.TransferEdge(from, to, out).reachable
}

// ValRange returns the computed interval of SSA value id.
func (ri *RangeInfo) ValRange(id int) Interval {
	if id >= 0 && id < len(ri.vals) {
		return ri.vals[id]
	}
	return FullRange
}

// SlotRangeOut returns slot's interval at the end of block b.
func (ri *RangeInfo) SlotRangeOut(b, slot int) Interval {
	st := ri.sol.Out[b]
	if !st.reachable {
		return FullRange
	}
	return st.slots[slot]
}

// ---------------------------------------------------------------------------
// Loop trip-count inference.

// TripCount bounds a natural loop's iterations.
type TripCount struct {
	// Bounded reports whether a finite trip bound was inferred.
	Bounded bool
	// Max is the inferred upper bound on iterations (valid if Bounded).
	Max uint64
	// HasFeasibleExit reports whether any exit edge survives range
	// propagation (false for while(true)-style loops).
	HasFeasibleExit bool
}

// InferTripCount bounds the iterations of loop l: it looks for an exit
// condition governed by an induction slot (every in-loop store is a
// constant-step increment) whose bound has a known range at the exit test.
func (ri *RangeInfo) InferTripCount(c *CFG, l *Loop) TripCount {
	tc := TripCount{}
	for _, e := range l.Exits {
		if ri.EdgeFeasible(e.From, e.To) {
			tc.HasFeasibleExit = true
			break
		}
	}
	if !tc.HasFeasibleExit {
		return tc
	}
	// Initial slot ranges entering the loop.
	pres := c.Preheaders(l)
	best := ^uint64(0)
	found := false
	for _, e := range l.Exits {
		term := c.F.Blocks[e.From].Terminator()
		if term == nil || term.Op != ir.OpCondBr || !ri.EdgeFeasible(e.From, e.To) {
			continue
		}
		// The loop leaves when the branch takes the exit side; the
		// condition's truth on that side is what bounds the loop.
		exitOnTrue := e.To == term.True
		if n, ok := ri.exitBound(c, l, e.From, term.Args[0], exitOnTrue, pres); ok && n < best {
			best = n
			found = true
		}
	}
	if found {
		tc.Bounded = true
		tc.Max = best
	}
	return tc
}

// exitBound tries to bound the iterations before cond reaches the truth
// value that exits the loop.
func (ri *RangeInfo) exitBound(c *CFG, l *Loop, block int, cond ir.Value, exitTruth bool, pres []int) (uint64, bool) {
	if cond.Kind != ir.VInstr {
		return 0, false
	}
	def := ri.instrByID[cond.ID]
	if def == nil || ri.blockOf[cond.ID] != block {
		return 0, false
	}
	switch def.Op {
	case ir.OpAnd:
		if !exitTruth {
			// Loop continues while both conjuncts hold: either conjunct
			// failing exits, so either bound limits the trip count.
			if n, ok := ri.exitBound(c, l, block, def.Args[0], false, pres); ok {
				return n, true
			}
			return ri.exitBound(c, l, block, def.Args[1], false, pres)
		}
	case ir.OpOr:
		if exitTruth {
			if n, ok := ri.exitBound(c, l, block, def.Args[0], true, pres); ok {
				return n, true
			}
			return ri.exitBound(c, l, block, def.Args[1], true, pres)
		}
	case ir.OpICmp:
		// Normalize to the *continue* condition: the comparison that holds
		// while the loop keeps running.
		pred := def.Pred
		if exitTruth {
			pred = pred.Negate()
		}
		lhs, rhs := def.Args[0], def.Args[1]
		if slot, _, ok := ri.slotOperand(block, lhs); ok {
			if n, ok2 := ri.inductionBound(c, l, slot, pred, ri.operand(rhs, ri.sol.In[block].slots), pres); ok2 {
				return n, true
			}
		}
		if slot, _, ok := ri.slotOperand(block, rhs); ok {
			if n, ok2 := ri.inductionBound(c, l, slot, swapPred(pred), ri.operand(lhs, ri.sol.In[block].slots), pres); ok2 {
				return n, true
			}
		}
	}
	return 0, false
}

// inductionBound bounds iterations of a loop that continues while
// `slot PRED bound` holds, given that every in-loop store to slot is a
// constant-step increment (step > 0).
func (ri *RangeInfo) inductionBound(c *CFG, l *Loop, slot int, pred ir.Pred, bound Interval, pres []int) (uint64, bool) {
	step, ok := ri.inductionStep(c, l, slot)
	if !ok {
		return 0, false
	}
	// Initial value entering the loop.
	init := Interval{}
	haveInit := false
	for _, p := range pres {
		st := ri.sol.Out[p]
		if !st.reachable {
			continue
		}
		if !haveInit {
			init = st.slots[slot]
			haveInit = true
		} else {
			init = init.Union(st.slots[slot])
		}
	}
	if !haveInit {
		return 0, false
	}
	var limit uint64
	switch pred {
	case ir.PredULT:
		limit = bound.Hi
	case ir.PredULE:
		if bound.Hi == ^uint64(0) {
			return 0, false
		}
		limit = bound.Hi + 1
	case ir.PredNE:
		// i != N with unit step starting at/below N terminates at N.
		cb, isConst := bound.Const()
		if !isConst || step != 1 || init.Lo > cb {
			return 0, false
		}
		limit = cb
	default:
		return 0, false
	}
	if limit <= init.Lo {
		return 0, true // condition already false on entry
	}
	return (limit - init.Lo + step - 1) / step, true
}

// inductionStep checks that every store to slot inside the loop is
// `slot = slot + c` (c > 0, via load of the same slot) and returns the
// smallest step.
func (ri *RangeInfo) inductionStep(c *CFG, l *Loop, slot int) (uint64, bool) {
	step := ^uint64(0)
	stores := 0
	for _, bi := range l.Blocks {
		for _, in := range c.F.Blocks[bi].Instrs {
			if in.Op != ir.OpLStore || in.Slot != slot {
				continue
			}
			stores++
			s, ok := ri.addConstStep(bi, in.Args[0], slot)
			if !ok || s == 0 {
				return 0, false
			}
			if s < step {
				step = s
			}
		}
	}
	if stores == 0 {
		return 0, false // loop-invariant slots never advance the loop
	}
	return step, true
}

// addConstStep matches v against `lload slot + const` (either operand
// order) inside block bi.
func (ri *RangeInfo) addConstStep(bi int, v ir.Value, slot int) (uint64, bool) {
	if v.Kind != ir.VInstr {
		return 0, false
	}
	def := ri.instrByID[v.ID]
	if def == nil || def.Op != ir.OpAdd {
		return 0, false
	}
	match := func(a, b ir.Value) (uint64, bool) {
		if b.Kind != ir.VConst {
			return 0, false
		}
		if s, _, ok := ri.slotOperand(ri.blockOf[v.ID], a); ok && s == slot {
			return uint64(b.Const) & typeMax(b.Ty), true
		}
		return 0, false
	}
	if s, ok := match(def.Args[0], def.Args[1]); ok {
		return s, true
	}
	return match(def.Args[1], def.Args[0])
}
