package ir

import (
	"testing"
	"testing/quick"
)

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		ty   Type
		size int
		bits int
	}{
		{Void, 0, 0},
		{Bool, 1, 1},
		{U8, 1, 8},
		{U16, 2, 16},
		{U32, 4, 32},
		{U64, 8, 64},
	}
	for _, c := range cases {
		if got := c.ty.Size(); got != c.size {
			t.Errorf("%s.Size() = %d, want %d", c.ty, got, c.size)
		}
		if got := c.ty.Bits(); got != c.bits {
			t.Errorf("%s.Bits() = %d, want %d", c.ty, got, c.bits)
		}
	}
}

func TestOpClassesDisjoint(t *testing.T) {
	for op := OpInvalid; op <= OpRet; op++ {
		n := 0
		if op.IsCompute() {
			n++
		}
		if op.IsStatefulMem() {
			n++
		}
		if op.IsLocalMem() {
			n++
		}
		if op.IsTerminator() {
			n++
		}
		if n > 1 {
			t.Errorf("op %s belongs to %d classes", op, n)
		}
	}
}

func TestPredNegateInvolution(t *testing.T) {
	preds := []Pred{PredEQ, PredNE, PredULT, PredULE, PredUGT, PredUGE}
	for _, p := range preds {
		if p.Negate().Negate() != p {
			t.Errorf("negate(negate(%s)) != %s", p, p)
		}
		if p.Negate() == p {
			t.Errorf("negate(%s) == %s", p, p)
		}
	}
}

func buildSimpleModule() *Module {
	b := NewBuilder(HandlerName, nil, Void)
	s := b.NewSlot()
	b.LStore(s, ConstVal(1, U32))
	v := b.LLoad(s, U32)
	sum := b.Bin(OpAdd, U32, v, ConstVal(2, U32))
	cond := b.ICmp(PredULT, sum, ConstVal(10, U32))
	then := b.NewBlock("then")
	b.SetBlock(b.F.Blocks[0])
	exit := b.NewBlock("exit")
	b.SetBlock(b.F.Blocks[0])
	b.CondBr(cond, then, exit)
	b.SetBlock(then)
	b.GStore("ctr", sum, nil)
	b.Br(exit)
	b.SetBlock(exit)
	b.Ret(nil)
	return &Module{
		Name:    "m",
		Globals: []*Global{{Name: "ctr", Kind: GScalar, Elem: U32}},
		Funcs:   []*Func{b.F},
	}
}

func TestBuilderAndVerify(t *testing.T) {
	m := buildSimpleModule()
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	st := ModuleStats(m)
	if st.Compute != 2 {
		t.Errorf("Compute = %d, want 2", st.Compute)
	}
	if st.StateMem != 1 {
		t.Errorf("StateMem = %d, want 1", st.StateMem)
	}
	if st.LocalMem != 2 {
		t.Errorf("LocalMem = %d, want 2", st.LocalMem)
	}
	if !st.Stateful || st.StateSize != 4 {
		t.Errorf("Stateful/StateSize = %v/%d, want true/4", st.Stateful, st.StateSize)
	}
}

func TestVerifyCatchesBadBranch(t *testing.T) {
	m := buildSimpleModule()
	m.Funcs[0].Blocks[0].Instrs[len(m.Funcs[0].Blocks[0].Instrs)-1].True = 99
	if err := Verify(m); err == nil {
		t.Fatal("Verify accepted out-of-range branch target")
	}
}

func TestVerifyCatchesUnterminated(t *testing.T) {
	m := buildSimpleModule()
	blk := m.Funcs[0].Blocks[2]
	blk.Instrs = blk.Instrs[:0]
	if err := Verify(m); err == nil {
		t.Fatal("Verify accepted unterminated block")
	}
}

func TestVerifyCatchesUnknownGlobal(t *testing.T) {
	m := buildSimpleModule()
	m.Globals = nil
	if err := Verify(m); err == nil {
		t.Fatal("Verify accepted store to unknown global")
	}
}

func TestGlobalSizes(t *testing.T) {
	g := &Global{Kind: GScalar, Elem: U64}
	if g.SizeBytes() != 8 {
		t.Errorf("scalar u64 size = %d", g.SizeBytes())
	}
	g = &Global{Kind: GArray, Elem: U32, Len: 256}
	if g.SizeBytes() != 1024 {
		t.Errorf("array size = %d", g.SizeBytes())
	}
	g = &Global{Kind: GMap, Key: U64, Elem: U64, Len: 100}
	if g.SizeBytes() != 100*(8+8+1) {
		t.Errorf("map size = %d", g.SizeBytes())
	}
}

func TestVocabCompaction(t *testing.T) {
	m := buildSimpleModule()
	v := BuildVocab([]*Module{m}, true)
	if v.Size() < 4 {
		t.Fatalf("vocabulary too small: %d", v.Size())
	}
	// Unknown word maps to <unk>.
	if v.Index("no-such-word") != v.Index(UnknownWord) {
		t.Error("unknown word did not map to <unk>")
	}
	// Compact words never contain concrete value numbers.
	for _, w := range v.Words() {
		for i := 0; i < len(w); i++ {
			if w[i] == '%' {
				t.Errorf("compact word %q leaks a concrete operand", w)
			}
		}
	}
}

func TestVocabEncodeRoundTrip(t *testing.T) {
	v := NewVocab()
	a := v.Add("alpha")
	b := v.Add("beta")
	if v.Add("alpha") != a {
		t.Error("Add not idempotent")
	}
	got := v.Encode([]string{"beta", "alpha", "gamma"})
	want := []int{b, a, v.Index(UnknownWord)}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Encode = %v, want %v", got, want)
		}
	}
}

func TestWordDistinguishesOperandKinds(t *testing.T) {
	i1 := &Instr{Op: OpAdd, Ty: U32, Args: []Value{InstrVal(1, U32), ConstVal(2, U32)}}
	i2 := &Instr{Op: OpAdd, Ty: U32, Args: []Value{InstrVal(1, U32), InstrVal(3, U32)}}
	if Word(i1, true) == Word(i2, true) {
		t.Error("VAR+INT and VAR+VAR adds should differ")
	}
	i3 := &Instr{Op: OpAdd, Ty: U32, Args: []Value{InstrVal(7, U32), ConstVal(9, U32)}}
	if Word(i1, true) != Word(i3, true) {
		t.Error("compaction should erase concrete operand identities")
	}
	if Word(i1, false) == Word(i3, false) {
		t.Error("raw mode should keep concrete operands distinct")
	}
}

func TestAlignDistributions(t *testing.T) {
	p := map[string]float64{"add": 0.5, "mul": 0.5}
	q := map[string]float64{"add": 0.25, "xor": 0.75}
	pv, qv := AlignDistributions(p, q)
	if len(pv) != 3 || len(qv) != 3 {
		t.Fatalf("aligned lengths %d/%d, want 3", len(pv), len(qv))
	}
	var sp, sq float64
	for i := range pv {
		sp += pv[i]
		sq += qv[i]
	}
	if sp != 1 || sq != 1 {
		t.Errorf("aligned mass %v/%v, want 1/1", sp, sq)
	}
}

func TestReachableAndLoops(t *testing.T) {
	// entry -> b1 <-> b2, b3 unreachable.
	b := NewBuilder("f", nil, Void)
	entry := b.Current()
	b1 := b.NewBlock("b1")
	b2 := b.NewBlock("b2")
	b3 := b.NewBlock("b3")
	b.SetBlock(entry)
	b.Br(b1)
	b.SetBlock(b1)
	c := b.ICmp(PredEQ, ConstVal(0, U32), ConstVal(0, U32))
	b.CondBr(c, b2, b1)
	b.SetBlock(b2)
	b.Br(b1)
	b.SetBlock(b3)
	b.Ret(nil)
	f := b.F
	reach := Reachable(f)
	if !reach[0] || !reach[1] || !reach[2] || reach[3] {
		t.Errorf("Reachable = %v", reach)
	}
	loops := LoopBlocks(f)
	if !loops[1] || !loops[2] {
		t.Errorf("b1/b2 should be loop blocks: %v", loops)
	}
	if loops[0] || loops[3] {
		t.Errorf("entry/b3 should not be loop blocks: %v", loops)
	}
}

func TestValueKindProperty(t *testing.T) {
	// Property: ConstVal/InstrVal/ParamVal round-trip their payloads.
	f := func(c int64, id uint8) bool {
		cv := ConstVal(c, U64)
		iv := InstrVal(int(id), U32)
		pv := ParamVal(int(id), U16)
		return cv.Kind == VConst && cv.Const == c &&
			iv.Kind == VInstr && iv.ID == int(id) &&
			pv.Kind == VParam && pv.ID == int(id)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFuncPreds(t *testing.T) {
	m := buildSimpleModule()
	preds := m.Funcs[0].Preds()
	// entry (b0) -> then (b1) and exit (b2); then -> exit.
	if len(preds[0]) != 0 {
		t.Errorf("entry has preds %v", preds[0])
	}
	if len(preds[1]) != 1 || preds[1][0] != 0 {
		t.Errorf("then preds = %v", preds[1])
	}
	if len(preds[2]) != 2 {
		t.Errorf("exit preds = %v", preds[2])
	}
}

func TestSeqString(t *testing.T) {
	if s := SeqString([]string{"a", "b"}); s != "[a b]" {
		t.Errorf("SeqString = %q", s)
	}
}
