package offload

import (
	"fmt"
	"math"
	"math/rand"
)

// SizeDistKind selects a flow-size distribution family.
type SizeDistKind int

const (
	// SizeZipf draws flow sizes from a truncated Zipf — the classic
	// internet flow-size mix (many mice, a fat elephant tail).
	SizeZipf SizeDistKind = iota
	// SizeBimodal draws an elephant size with probability ElephantFrac
	// and a mouse size otherwise.
	SizeBimodal
)

// SizeDist is a flow-size (total packets per flow) distribution. It is a
// plain value, not an interface, so configs marshal and compare cleanly.
type SizeDist struct {
	Kind SizeDistKind
	// Zipf parameters: sizes in [Min,Max] with skew S (must be > 1 for
	// rand.Zipf; larger = more mice).
	S   float64
	Min int
	Max int
	// Bimodal parameters.
	ElephantSize int
	MouseMax     int     // mouse sizes are uniform in [1,MouseMax]
	ElephantFrac float64 // fraction of flows that are elephants
}

// Validate rejects unusable distributions.
func (d SizeDist) Validate() error {
	switch d.Kind {
	case SizeZipf:
		// The skew must be a finite value > 1: rand.Zipf's rejection
		// sampler can spin forever on NaN/Inf parameters.
		if !(d.S > 1) || math.IsInf(d.S, 1) {
			return fmt.Errorf("offload: Zipf skew must be finite and > 1 (got %g)", d.S)
		}
		if d.Min <= 0 || d.Max < d.Min {
			return fmt.Errorf("offload: Zipf size range [%d,%d] invalid", d.Min, d.Max)
		}
	case SizeBimodal:
		if d.ElephantSize <= 0 || d.MouseMax <= 0 {
			return fmt.Errorf("offload: bimodal sizes must be positive (%d/%d)", d.ElephantSize, d.MouseMax)
		}
		// Written to also reject NaN.
		if !(d.ElephantFrac >= 0 && d.ElephantFrac <= 1) {
			return fmt.Errorf("offload: ElephantFrac %g outside [0,1]", d.ElephantFrac)
		}
	default:
		return fmt.Errorf("offload: unknown size distribution %d", int(d.Kind))
	}
	return nil
}

// maxSize is the largest flow size the distribution can produce (the
// natural upper clamp for thresholds).
func (d SizeDist) maxSize() int {
	if d.Kind == SizeBimodal {
		if d.ElephantSize > d.MouseMax {
			return d.ElephantSize
		}
		return d.MouseMax
	}
	return d.Max
}

// sampler prepares the per-round sampling state for one PRNG. rand.Zipf
// carries internal state, so each round builds a fresh one from that
// round's PRNG — construction is cheap and keeps rounds independent.
type sampler struct {
	d    SizeDist
	rng  *rand.Rand
	zipf *rand.Zipf
}

func (d SizeDist) sampler(rng *rand.Rand) sampler {
	s := sampler{d: d, rng: rng}
	if d.Kind == SizeZipf && d.Max > d.Min {
		s.zipf = rand.NewZipf(rng, d.S, 1, uint64(d.Max-d.Min))
	}
	return s
}

func (s sampler) sample() int {
	switch s.d.Kind {
	case SizeBimodal:
		if s.rng.Float64() < s.d.ElephantFrac {
			return s.d.ElephantSize
		}
		return 1 + s.rng.Intn(s.d.MouseMax)
	default:
		if s.zipf == nil {
			return s.d.Min
		}
		return s.d.Min + int(s.zipf.Uint64())
	}
}

// Samples draws n flow sizes with a dedicated PRNG — the deterministic
// empirical view of the distribution the insight seeding uses.
func (d SizeDist) Samples(n int, seed int64) []int {
	s := d.sampler(rand.New(rand.NewSource(seed)))
	out := make([]int, n)
	for i := range out {
		out[i] = s.sample()
	}
	return out
}

// OffloadedShare estimates, from empirical flow sizes, the fraction of
// packet traffic a threshold T moves to the fast path: a flow of size s
// pays its first T packets on the slow path and carries s-T on the fast
// path once its rule lands. Monotone non-increasing in T.
func OffloadedShare(samples []int, threshold int) float64 {
	var total, fast int64
	for _, s := range samples {
		total += int64(s)
		if s > threshold {
			fast += int64(s - threshold)
		}
	}
	if total == 0 {
		return 0
	}
	return float64(fast) / float64(total)
}

// Scenario describes the flow stream offered to the NIC.
type Scenario struct {
	Name string
	// CPS is new flows per round (connections per second).
	CPS int
	// PPS caps offered packets per round; flows beyond it hold their
	// packets (the generator traverses flows until the cap, SNIPPETS §1
	// step 2).
	PPS int
	// Sizes is the total-packets-per-flow distribution.
	Sizes SizeDist
	// FlowRounds spreads a flow's packets over about this many rounds
	// (per-round rate = ceil(size/FlowRounds)); mice still finish in one
	// round. Defaults to 16.
	FlowRounds int
	// AttackCPS adds this many single-packet SYN flows per round from
	// round AttackStart on — the SYN-flood scenario. They complete
	// immediately, so they are never offload candidates; they exist to
	// burn slow-path capacity.
	AttackCPS   int
	AttackStart int
}

// Validate rejects unusable scenarios.
func (sc Scenario) Validate() error {
	if sc.CPS <= 0 {
		return fmt.Errorf("offload: CPS must be positive (got %d)", sc.CPS)
	}
	if sc.PPS <= 0 {
		return fmt.Errorf("offload: PPS must be positive (got %d)", sc.PPS)
	}
	if sc.FlowRounds < 0 {
		return fmt.Errorf("offload: FlowRounds must be >= 0 (got %d)", sc.FlowRounds)
	}
	if sc.AttackCPS < 0 || sc.AttackStart < 0 {
		return fmt.Errorf("offload: attack knobs must be >= 0 (got %d@%d)", sc.AttackCPS, sc.AttackStart)
	}
	return sc.Sizes.Validate()
}

func (sc Scenario) flowRounds() int {
	if sc.FlowRounds == 0 {
		return 16
	}
	return sc.FlowRounds
}

// The three standard scenarios. Their flow mixes reuse the skew/flood
// flavor of the standard traffic workloads (traffic.MediumMix's Zipf
// popularity, traffic.SYNFlood's attack mix, traffic.ElephantMice's
// bimodal split) at flow-size granularity. The offered load is sized
// against the capacities DeriveCapacities produces for a mid-weight NF:
// steady state offers ~2.5-3x the slow-path budget, so the controller
// must offload the heavy tail to stop dropping.

// ZipfScenario is the steady-state mix: Zipf flow sizes, constant churn.
// ~2000 new flows and ~150k offered packets per round at steady state.
func ZipfScenario() Scenario {
	return Scenario{
		Name: "zipf",
		CPS:  2000,
		PPS:  1 << 18,
		Sizes: SizeDist{
			Kind: SizeZipf, S: 1.2, Min: 1, Max: 1024,
		},
	}
}

// SYNFloodScenario is the Zipf mix plus a flood of one-packet SYN flows
// from round 12 on: the attack is unoffloadable (single-packet flows
// never become candidates), so the controller must offload more of the
// legitimate tail to protect the slow path.
func SYNFloodScenario() Scenario {
	sc := ZipfScenario()
	sc.Name = "synflood"
	sc.AttackCPS = 8000
	sc.AttackStart = 12
	return sc
}

// ElephantMiceScenario is the bimodal mix: a small elephant fraction
// carries almost all packets, so almost any sane threshold separates the
// classes — the scenario where hand-set baselines are hardest to beat.
func ElephantMiceScenario() Scenario {
	return Scenario{
		Name: "elephantmice",
		CPS:  2000,
		PPS:  1 << 18,
		Sizes: SizeDist{
			Kind: SizeBimodal, ElephantSize: 16384, MouseMax: 8, ElephantFrac: 0.004,
		},
	}
}

// Scenarios returns the three standard scenarios in CLI/benchmark order.
func Scenarios() []Scenario {
	return []Scenario{ZipfScenario(), SYNFloodScenario(), ElephantMiceScenario()}
}

// ScenarioByName parses a CLI scenario name.
func ScenarioByName(name string) (Scenario, error) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("offload: unknown scenario %q (zipf|synflood|elephantmice)", name)
}
