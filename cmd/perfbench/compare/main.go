// Command compare diffs two perfbench reports field by field:
//
//	compare OLD.json NEW.json
//
// Numeric fields print old, new, and the relative change; fields present
// in only one report are listed as added/removed. It exits 0 regardless
// of the deltas — benchmark numbers from different machines are not
// comparable, so the diff informs rather than gates (the Makefile's
// bench-compare target wraps it fail-soft).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: compare OLD.json NEW.json")
		os.Exit(2)
	}
	oldRep, err := load(os.Args[1])
	if err != nil {
		fatal(err)
	}
	newRep, err := load(os.Args[2])
	if err != nil {
		fatal(err)
	}

	keys := make(map[string]bool)
	for k := range oldRep {
		keys[k] = true
	}
	for k := range newRep {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	for _, k := range sorted {
		ov, oldOK := oldRep[k]
		nv, newOK := newRep[k]
		switch {
		case !oldOK:
			fmt.Printf("  %-28s (new)        %v\n", k, nv)
		case !newOK:
			fmt.Printf("  %-28s (removed)    %v\n", k, ov)
		default:
			of, oNum := ov.(float64)
			nf, nNum := nv.(float64)
			if oNum && nNum && of != 0 {
				fmt.Printf("  %-28s %12.4g -> %-12.4g (%+.1f%%)\n", k, of, nf, 100*(nf-of)/of)
			} else if fmt.Sprint(ov) != fmt.Sprint(nv) {
				fmt.Printf("  %-28s %v -> %v\n", k, ov, nv)
			}
		}
	}
}

func load(path string) (map[string]any, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compare:", err)
	os.Exit(1)
}
