package lang

import (
	"strings"
	"testing"

	"clara/internal/ir"
)

const miniNAT = `
// MiniNAT: the Figure 4 example, in NFC.
map<u64,u64> int_map[4096];

void handle() {
	u16 hl = u16(pkt_ip_hl()) << 2;
	u16 tl = pkt_ip_len();
	if (hl < tl) {
		u64 key = (u64(pkt_ip_dst()) << 32) | u64(pkt_ip_src());
		if (map_contains(int_map, key)) {
			u64 f = map_find(int_map, key);
			pkt_set_ip_dst(u32(f >> 16));
			pkt_set_tcp_dport(u16(f & 0xffff));
			pkt_csum_update();
			pkt_send(0);
			return;
		}
	}
	pkt_drop();
}
`

func TestLexAll(t *testing.T) {
	toks, err := LexAll("u32 x = 0x1f + 2; // comment\nif (x<=3) { x <<= 1; }")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.Kind != TEOF {
			texts = append(texts, tk.Text)
		}
	}
	want := "u32 x = 0x1f + 2 ; if ( x <= 3 ) { x <<= 1 ; }"
	if got := strings.Join(texts, " "); got != want {
		t.Errorf("tokens = %q, want %q", got, want)
	}
	if toks[3].Val != 0x1f {
		t.Errorf("hex literal = %d, want 31", toks[3].Val)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := LexAll("u32 x @ 1;"); err == nil {
		t.Error("lexer accepted '@'")
	}
	if _, err := LexAll("x = 99999999999999999999999;"); err == nil {
		t.Error("lexer accepted overflowing literal")
	}
}

func TestCompileMiniNAT(t *testing.T) {
	m, err := Compile("mininat", miniNAT)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	g := m.Global("int_map")
	if g == nil || g.Kind != ir.GMap || g.Len != 4096 {
		t.Fatalf("int_map global wrong: %+v", g)
	}
	st := ir.ModuleStats(m)
	if st.APICalls < 8 {
		t.Errorf("expected >=8 API calls, got %d", st.APICalls)
	}
	if st.Compute < 5 {
		t.Errorf("expected compute instructions, got %d", st.Compute)
	}
	if st.Blocks < 4 {
		t.Errorf("expected a branching CFG, got %d blocks", st.Blocks)
	}
}

func TestCompileLoopsAndArrays(t *testing.T) {
	src := `
global u32 counters[256];
global u64 total;

void handle() {
	u32 i = 0;
	while (i < 256) {
		counters[i] = counters[i] + 1;
		i += 1;
	}
	for (u32 j = 0; j < 10; j += 2) {
		if (j == 4) { continue; }
		if (j == 8) { break; }
		total += u64(counters[j]);
	}
	pkt_send(0);
}
`
	m, err := Compile("loops", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	f := m.Handler()
	loops := ir.LoopBlocks(f)
	n := 0
	for _, in := range loops {
		if in {
			n++
		}
	}
	if n < 2 {
		t.Errorf("expected blocks in 2 loops, got %d loop blocks", n)
	}
}

func TestCompileUserFunctionInlining(t *testing.T) {
	src := `
global u32 acc;

u32 mix(u32 a, u32 b) {
	u32 x = a ^ b;
	if (x == 0) { return 1; }
	return x * 2654435761;
}

void handle() {
	acc = mix(pkt_ip_src(), pkt_ip_dst());
	pkt_send(0);
}
`
	m, err := Compile("inline", src)
	if err != nil {
		t.Fatal(err)
	}
	// Everything is inlined: only framework API calls remain.
	for _, b := range m.Handler().Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && !IsIntrinsic(in.Callee) {
				t.Errorf("user call %q survived inlining", in.Callee)
			}
		}
	}
}

func TestCompileRejectsRecursion(t *testing.T) {
	src := `
u32 f(u32 n) { return f(n); }
void handle() { u32 x = f(1); pkt_drop(); }
`
	if _, err := Compile("rec", src); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("want recursion error, got %v", err)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no-handler", `global u32 x;`, "no \"handle\""},
		{"undefined-var", `void handle() { x = 1; }`, "undefined"},
		{"undefined-func", `void handle() { u32 x = nope(); }`, "undefined function"},
		{"redeclared-global", "global u32 x;\nglobal u32 x;\nvoid handle() {}", "redeclared"},
		{"bad-map-arg", `void handle() { u64 v = map_find(42, 1); }`, "must name a stateful structure"},
		{"map-not-declared", `void handle() { u64 v = map_find(m, 1); }`, "is not a map"},
		{"arity", `void handle() { pkt_send(); }`, "expects 1 argument"},
		{"assign-to-map", "map<u64,u64> m[16];\nvoid handle() { m = 1; }", "map"},
		{"break-outside", `void handle() { break; }`, "break outside loop"},
		{"handler-params", `void handle(u32 x) { }`, "must be"},
		{"shadow-intrinsic", `u32 hash32(u64 k) { return 1; }
void handle() {}`, "shadows"},
		{"zero-cap-array", "global u32 a[0];\nvoid handle() {}", "positive capacity"},
	}
	for _, c := range cases {
		if _, err := Compile(c.name, c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: want error containing %q, got %v", c.name, c.want, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`void handle() {`,
		`void handle() } `,
		`global map<u64> m[4]; void handle(){}`,
		`void handle() { u32 x = ; }`,
		`void handle() { if x { } }`,
	}
	for _, src := range bad {
		if _, err := Compile("bad", src); err == nil {
			t.Errorf("accepted malformed source %q", src)
		}
	}
}

func TestTypeUnificationAndCasts(t *testing.T) {
	src := `
global u64 total;
void handle() {
	u8 a = pkt_ip_ttl();
	u16 b = pkt_ip_len();
	u32 c = u32(a) + u32(b);   // explicit widening
	u64 d = u64(c) * 3;        // literal takes the typed side's type
	if (a < b) { total += d; } // implicit unify u8 vs u16
	pkt_send(0);
}
`
	m, err := Compile("types", src)
	if err != nil {
		t.Fatal(err)
	}
	// Find at least one zext emitted by unification.
	found := false
	for _, b := range m.Handler().Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpZExt {
				found = true
			}
		}
	}
	if !found {
		t.Error("expected zext instructions from type unification")
	}
}

func TestCompoundAssignEvaluatesIndexOnce(t *testing.T) {
	src := `
global u32 a[16];
global u32 n;
void handle() {
	a[n & 15] += 7;
	pkt_send(0);
}
`
	m, err := Compile("compound", src)
	if err != nil {
		t.Fatal(err)
	}
	// The index expression (n & 15) loads global n exactly once.
	loads := 0
	for _, b := range m.Handler().Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpGLoad && in.Global == "n" {
				loads++
			}
		}
	}
	if loads != 1 {
		t.Errorf("index evaluated %d times, want 1", loads)
	}
}

func TestDeadCodeAfterReturnDropped(t *testing.T) {
	src := `
void handle() {
	pkt_drop();
	return;
	pkt_send(0);
}
`
	m, err := Compile("dead", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range m.Handler().Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Callee == "pkt_send" {
				t.Error("dead pkt_send survived")
			}
		}
	}
}
