package traffic

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	pkts := MustTrace(MediumMix, 500)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("count %d != %d", len(got), len(pkts))
	}
	for i := range pkts {
		want := pkts[i]
		want.OutPort = -2
		want.CsumUpdated = false
		if len(want.Payload) == 0 {
			want.Payload = nil
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("packet %d differs:\n got %+v\nwant %+v", i, got[i], want)
		}
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("not a trace at all")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadTrace(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	// Truncation mid-record.
	pkts := MustTrace(MediumMix, 10)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadTrace(bytes.NewReader(cut)); err == nil {
		t.Error("truncated trace accepted")
	}
	// Version bump rejected.
	full := buf.Bytes()
	full[4] = 99
	if _, err := ReadTrace(bytes.NewReader(full)); err == nil {
		t.Error("future version accepted")
	}
}

func TestReplayerLoopsMonotonically(t *testing.T) {
	pkts := MustTrace(MediumMix, 20)
	r, err := NewReplayer(pkts)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	seen := map[uint64]int{}
	for i := 0; i < 65; i++ {
		p := r.Next()
		if p.Time < last {
			t.Fatalf("time went backwards at %d", i)
		}
		last = p.Time
		seen[uint64(p.SrcIP)]++
		if p.OutPort != -2 {
			t.Fatal("disposition not reset")
		}
	}
	// The 20-packet trace looped three times: sources repeat.
	for _, n := range seen {
		if n >= 3 {
			return
		}
	}
	t.Error("no source repeated across loops")
}

func TestReplayerPayloadIsolation(t *testing.T) {
	pkts := MustTrace(MediumMix, 4)
	r, err := NewReplayer(pkts)
	if err != nil {
		t.Fatal(err)
	}
	p := r.Next()
	if len(p.Payload) == 0 {
		t.Skip("no payload in first packet")
	}
	p.Payload[0] ^= 0xFF
	// Replay the same packet on the next loop; it must be unmodified.
	for i := 0; i < len(pkts)-1; i++ {
		r.Next()
	}
	q := r.Next()
	if q.Payload[0] == p.Payload[0] {
		t.Error("replayed payload aliased a mutated buffer")
	}
}

func TestNewReplayerEmpty(t *testing.T) {
	if _, err := NewReplayer(nil); err == nil {
		t.Error("empty trace accepted")
	}
}
