package experiments

import (
	"fmt"

	"clara/internal/core"
	"clara/internal/ml"
	"clara/internal/niccc"
	"clara/internal/nicsim"
	"clara/internal/stats"
	"clara/internal/traffic"
)

// complexNFs are the four largest NFs used by §5.4–§5.7.
var complexNFs = []string{"mazunat", "dnsproxy", "webgen", "udpcount"}

// portedNF builds a complex NF with the porting insights already applied
// that §5.4 presumes (checksum on the ingress engine); scale-out analysis
// then studies the ported program, as the paper does.
func portedNF(name string) *nicsim.NF {
	return elementNF(name, func(nf *nicsim.NF) { nf.Accel.CsumEngine = true })
}

// Figure11a reproduces the model comparison for core-count prediction:
// MAE (in cores) of Clara's GBDT vs AutoML, kNN and DNN on the scale-out
// dataset (§5.4).
func Figure11a(ctx *Context) (*Table, error) {
	sm, err := ctx.Scaleout()
	if err != nil {
		return nil, err
	}
	data := sm.Train
	// Held-out split: every fourth sample tests.
	var trX, teX [][]float64
	var trY, teY []float64
	for i, s := range data {
		if i%4 == 3 {
			teX = append(teX, s.Features)
			teY = append(teY, float64(s.Optimal))
		} else {
			trX = append(trX, s.Features)
			trY = append(trY, float64(s.Optimal))
		}
	}
	mae := func(m ml.Regressor) float64 {
		var preds []float64
		for _, x := range teX {
			preds = append(preds, m.Predict(x))
		}
		return stats.MAE(teY, preds)
	}

	t := &Table{
		ID:     "figure11a",
		Title:  "Core-count prediction MAE (cores), Clara(GBDT) vs baselines",
		Header: []string{"model", "MAE(cores)"},
	}
	gb := ml.FitGBDT(trX, trY, ml.GBDTConfig{Trees: 120, MaxDepth: 4, LR: 0.08, Seed: ctx.Cfg.Seed})
	t.AddRow("Clara(GBDT)", f2(mae(gb)))
	auto, autoRes, err := ml.AutoMLRegressor(trX, trY, 4, ctx.Cfg.Seed+51)
	if err != nil {
		return nil, err
	}
	t.AddRow("AutoML", f2(mae(auto)))
	t.AddRow("kNN", f2(mae(ml.FitKNNRegressor(trX, trY, 3))))
	targets := make([][]float64, len(trY))
	for i, v := range trY {
		targets[i] = []float64{v}
	}
	dnn, _ := ml.TrainMLP(trX, targets, ml.MLPConfig{
		Layers: []int{len(trX[0]), 24, 1}, Epochs: 80, Seed: ctx.Cfg.Seed + 52, TargetScale: 10,
	})
	t.AddRow("DNN", f2(mae(dnn)))
	t.Notef("paper Figure 11(a): GBDT lowest MAE, AutoML picks GBDT with different parameters")
	t.Notef("AutoML selected: %s", autoRes.Pipeline)
	return t, nil
}

// Figure11b reproduces the suggested-vs-optimal core counts for the four
// most complex NFs (§5.4: deviations of 1–6%).
func Figure11b(ctx *Context) (*Table, error) {
	sm, err := ctx.Scaleout()
	if err != nil {
		return nil, err
	}
	pred, err := ctx.Predictor()
	if err != nil {
		return nil, err
	}
	params := ctx.Cfg.Params
	n := ctx.packets(5000)
	wl := traffic.LargeFlows

	t := &Table{
		ID:     "figure11b",
		Title:  "Suggested vs optimal core counts (large flows)",
		Header: []string{"NF", "Clara", "optimal", "deviation"},
	}
	var devs []float64
	for _, name := range complexNFs {
		// Optimal by exhaustive sweep.
		b, err := portedNF(name).Build(params)
		if err != nil {
			return nil, err
		}
		ts, err := nicsim.GenTraces(b, wl, n, params)
		if err != nil {
			return nil, err
		}
		rs, err := nicsim.SweepCores(params, ts, nicsim.DefaultCoreSweep)
		if err != nil {
			return nil, err
		}
		optimal := nicsim.KneeCores(rs)

		suggested, err := sm.SuggestForNF(portedNF(name).Mod, profileSetup(name), wl, pred,
			niccc.AccelConfig{CsumEngine: true})
		if err != nil {
			return nil, err
		}
		dev := float64(abs(suggested-optimal)) / float64(params.NumCores)
		devs = append(devs, dev)
		t.AddRow(name, fmt.Sprintf("%d", suggested), fmt.Sprintf("%d", optimal), pct(dev))
	}
	t.Notef("mean deviation %s of the 60-core budget (paper: 1–6%%)", pct(stats.Mean(devs)))
	return t, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Figure11cd reproduces the throughput/latency-ratio curves against core
// count under large-flow and small-flow workloads (§5.4).
func Figure11cd(ctx *Context) (*Table, error) {
	params := ctx.Cfg.Params
	n := ctx.packets(5000)
	t := &Table{
		ID:     "figure11cd",
		Title:  "Throughput/latency ratio vs cores (large and small flows)",
		Header: append([]string{"NF", "workload"}, coreCols()...),
	}
	peaks := map[string][2]int{}
	maxGain := 0.0
	for _, name := range complexNFs {
		for _, wl := range []traffic.Spec{traffic.LargeFlows, traffic.SmallFlows} {
			b, err := portedNF(name).Build(params)
			if err != nil {
				return nil, err
			}
			ts, err := nicsim.GenTraces(b, wl, n, params)
			if err != nil {
				return nil, err
			}
			rs, err := nicsim.SweepCores(params, ts, nicsim.DefaultCoreSweep)
			if err != nil {
				return nil, err
			}
			row := []string{name, wl.Name}
			bestRatio, allRatio := 0.0, 0.0
			for _, r := range rs {
				row = append(row, f2(r.Ratio()))
				if r.Ratio() > bestRatio {
					bestRatio = r.Ratio()
				}
				if r.Cores == params.NumCores {
					allRatio = r.Ratio()
				}
			}
			if allRatio > 0 && bestRatio/allRatio-1 > maxGain {
				maxGain = bestRatio/allRatio - 1
			}
			t.Rows = append(t.Rows, row)
			k := peaks[name]
			if wl.Name == traffic.LargeFlows.Name {
				k[0] = nicsim.KneeCores(rs)
			} else {
				k[1] = nicsim.KneeCores(rs)
			}
			peaks[name] = k
		}
	}
	earlier := 0
	for _, name := range complexNFs {
		k := peaks[name]
		t.Notef("%s: ratio peaks at %d cores (large flows) vs %d (small flows)", name, k[0], k[1])
		if k[0] <= k[1] {
			earlier++
		}
	}
	t.Notef("%d/%d NFs peak earlier (or equal) under large flows (paper: larger flows peak earlier)", earlier, len(complexNFs))
	t.Notef("optimal core counts beat naively using all 60 cores by up to %s on Th/Lat ratio (paper: up to 71.1%%)", pct(maxGain))
	return t, nil
}

func coreCols() []string {
	out := make([]string, len(nicsim.DefaultCoreSweep))
	for i, c := range nicsim.DefaultCoreSweep {
		out[i] = fmt.Sprintf("c%d", c)
	}
	return out
}

// Figure11ef reproduces the detailed MazuNAT and WebGen curves: absolute
// throughput and latency per core count with Clara's suggestion marked.
func Figure11ef(ctx *Context) (*Table, error) {
	sm, err := ctx.Scaleout()
	if err != nil {
		return nil, err
	}
	pred, err := ctx.Predictor()
	if err != nil {
		return nil, err
	}
	params := ctx.Cfg.Params
	n := ctx.packets(5000)
	wl := traffic.LargeFlows

	t := &Table{
		ID:     "figure11ef",
		Title:  "MazuNAT / WebGen detail curves (large flows)",
		Header: []string{"NF", "cores", "throughput(Mpps)", "latency(us)", "ratio"},
	}
	naiveGain := map[string]float64{}
	for _, name := range []string{"mazunat", "webgen"} {
		b, err := portedNF(name).Build(params)
		if err != nil {
			return nil, err
		}
		ts, err := nicsim.GenTraces(b, wl, n, params)
		if err != nil {
			return nil, err
		}
		rs, err := nicsim.SweepCores(params, ts, nicsim.DefaultCoreSweep)
		if err != nil {
			return nil, err
		}
		suggested, err := sm.SuggestForNF(portedNF(name).Mod, profileSetup(name), wl, pred,
			niccc.AccelConfig{CsumEngine: true})
		if err != nil {
			return nil, err
		}
		var atAll, best nicsim.Result
		for _, r := range rs {
			mark := ""
			if r.Cores == nearestCore(suggested) {
				mark = "  <- Clara suggests"
			}
			t.AddRow(name, fmt.Sprintf("%d%s", r.Cores, mark),
				f2(r.ThroughputMpps), f2(r.AvgLatencyUs), f2(r.Ratio()))
			if r.Cores == params.NumCores {
				atAll = r
			}
			if r.Ratio() > best.Ratio() {
				best = r
			}
		}
		naiveGain[name] = best.Ratio()/atAll.Ratio() - 1
	}
	for name, g := range naiveGain {
		t.Notef("%s: optimal operating point beats all-60-cores by %s on Th/Lat ratio (paper: up to 71.1%%)", name, pct(g))
	}
	return t, nil
}

func nearestCore(c int) int {
	best, bd := nicsim.DefaultCoreSweep[0], 1<<30
	for _, s := range nicsim.DefaultCoreSweep {
		d := abs(s - c)
		if d < bd {
			bd = d
			best = s
		}
	}
	return best
}

var _ = core.ScaleoutFeatures
