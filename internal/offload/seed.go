package offload

import (
	"clara/internal/analysis"
	"clara/internal/core"
	"clara/internal/isa"
	"clara/internal/nicsim"
)

// RoundScale is the time compression of the simulation: one round models
// 1/64 of a second, so every per-second hardware rate divides by
// RoundScale to become a per-round budget. Scaling time instead of the
// hardware keeps all derived budgets mutually consistent while keeping a
// 96-round trajectory cheap enough for tests and CI.
const RoundScale = 64

// seedSamples is the empirical sample size the seeding math draws from a
// scenario's flow-size distribution, and seedSampleSeed its fixed PRNG
// seed — both constants so seeding is deterministic.
const (
	seedSamples    = 8192
	seedSampleSeed = 0x5eed5a17
)

// CyclesPerPacket converts Clara's per-NF prediction into the NIC-core
// cycle cost of one slow-path packet: predicted core-logic instructions
// plus exact reverse-ported API instructions (≈1 cycle each on the wimpy
// in-order cores), plus each stateful access's EMEM latency divided by
// the hardware threads that hide it.
func CyclesPerPacket(mp *core.ModulePrediction, p nicsim.Params) float64 {
	memLat := float64(p.Regions[isa.EMEM].Latency) / float64(p.ThreadsPerCore)
	return mp.TotalCompute + float64(mp.TotalAPI) + float64(mp.TotalMem)*memLat
}

// DeriveCapacities maps the nicsim hardware model plus a per-NF
// prediction to the controller's per-round budgets:
//
//   - fast path: offloaded flows hit the ingress flow cache — bounded by
//     the packet IO ceiling or the cores replaying the cached action,
//     whichever is smaller;
//   - slow path: un-offloaded packets run the full NF on the exception
//     path's reserved cores at the predicted per-packet cycle cost —
//     this is where the prediction sets the pressure the controller
//     must relieve;
//   - offload table: the EMEM-backed exact-match rule table, modeled at
//     16× the ingress cache (the cache holds the hot subset);
//   - insertions/round: rule installation through the management path is
//     slow (~30 µs/rule), the premise of having a threshold at all.
func DeriveCapacities(p nicsim.Params, mp *core.ModulePrediction) Capacities {
	coreHz := float64(p.NumCores) * p.CoreGHz * 1e9
	fast := p.IngressPPS()
	if p.FlowCacheHitCycles > 0 {
		if byCores := coreHz / float64(p.FlowCacheHitCycles); byCores < fast {
			fast = byCores
		}
	}
	cyc := CyclesPerPacket(mp, p)
	if cyc < 1 {
		cyc = 1
	}
	slow := float64(p.ExceptionPathCores()) * p.CoreGHz * 1e9 / cyc
	return Capacities{
		FastPathPPS:     int(fast) / RoundScale,
		SlowPathPPS:     int(slow) / RoundScale,
		OffloadTable:    p.FlowCacheEntries * 16,
		OffloadPerRound: 65536 / RoundScale, // ~15 µs per rule install
	}
}

// DeriveCapacitiesProfile refines DeriveCapacities with the NF's static
// state profile (analysis.ComputeStateProfile). The fast path is an
// exact-match rule cache over header fields: it can only replay actions
// whose state is header-keyed. When a share of the NF's stateful access
// weight is payload-dependent, that fraction of an offloaded flow's
// packets still detours through the full NF, so the effective fast-path
// throughput scales by the header-only share. A fully header-only NF
// (share 1 — every library element that keys maps by addresses/ports)
// keeps DeriveCapacities' split unchanged; a DPI-style NF that keys
// state off payload bytes sees its fast-path budget shrink toward the
// slow path it actually needs.
func DeriveCapacitiesProfile(p nicsim.Params, mp *core.ModulePrediction, sp *analysis.StateProfile) Capacities {
	caps := DeriveCapacities(p, mp)
	if sp == nil {
		return caps
	}
	share := sp.HeaderOnlyShare()
	fast := int(float64(caps.FastPathPPS) * share)
	if fast < 1 {
		fast = 1 // Validate requires positive capacities
	}
	caps.FastPathPPS = fast
	return caps
}

// SeedPolicy derives the insight-seeded policy for a scenario under the
// given capacities. The seeded threshold is the smallest one whose
// offload-candidate stream fits the rule-insertion budget (with 20%
// headroom) and the offload table — the lowest threshold the NIC can
// actually sustain. Lower is better because share of traffic moved to
// the fast path shrinks monotonically as the threshold grows; the
// binding constraints are the insertion rate and table size, both known
// from the capacities, while the slow-path need (derived from the
// prediction via SlowPathPPS) tells the caller whether even the best
// threshold suffices. The adjustment step scales with the threshold so
// residual corrections converge in a few rounds.
func SeedPolicy(sc Scenario, caps Capacities) PolicyConfig {
	samples := sc.Sizes.Samples(seedSamples, seedSampleSeed)
	maxT := sc.Sizes.maxSize()
	flowRounds := sc.flowRounds()
	insertBudget := float64(caps.OffloadPerRound) * 0.8

	fits := func(t int) bool {
		// Candidate arrival rate: new flows/round whose size crosses t.
		var over, occupancy float64
		for _, s := range samples {
			if s > t {
				over++
				// Rounds the flow holds a table entry: its remaining
				// lifetime after crossing the threshold.
				occupancy += float64(flowRounds) * float64(s-t) / float64(s)
			}
		}
		perFlow := float64(sc.CPS) / float64(len(samples))
		return over*perFlow <= insertBudget && occupancy*perFlow <= float64(caps.OffloadTable)
	}

	// Binary search the smallest sustainable threshold; fits is monotone
	// non-decreasing in t.
	lo, hi := 1, maxT
	for lo < hi {
		mid := lo + (hi-lo)/2
		if fits(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	step := lo / 8
	if step < 1 {
		step = 1
	}
	return PolicyConfig{Kind: PolicyInsight, Initial: lo, Step: step, Min: 1, Max: maxT}
}

// SeedFromPrediction is the full insight-seeding path: Clara's per-NF
// prediction fixes the capacities (most importantly the slow-path
// throughput this NF leaves the exception path), and the capacities plus
// the scenario's flow-size mix fix the starting threshold and step.
func SeedFromPrediction(mp *core.ModulePrediction, p nicsim.Params, sc Scenario) (Capacities, PolicyConfig) {
	caps := DeriveCapacities(p, mp)
	return caps, SeedPolicy(sc, caps)
}

// NominalPrediction is a mid-weight stand-in NF prediction (roughly the
// element library's median predicted cost) used to derive capacities
// when no trained predictor is in play — the static/dynamic CLI paths,
// which must run without training.
func NominalPrediction() *core.ModulePrediction {
	return &core.ModulePrediction{
		Name:         "nominal",
		TotalCompute: 420,
		TotalAPI:     200,
		TotalMem:     7,
	}
}

// BaselinePolicy returns the non-seeded policy configs the benchmarks
// compare against: the operator's hand-set static threshold, or the
// classic dynamic adjustment starting from the same hand-set value.
func BaselinePolicy(kind PolicyKind, sc Scenario) PolicyConfig {
	return PolicyConfig{
		Kind:    kind,
		Initial: DefaultStaticThreshold,
		Step:    DefaultDynamicStep,
		Min:     1,
		Max:     sc.Sizes.maxSize(),
	}
}
