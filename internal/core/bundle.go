package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"clara/internal/ir"
	"clara/internal/ml"
	"clara/internal/niccc"
	"clara/internal/nicsim"
)

// This file implements the persistent model bundle: a versioned,
// content-hashed encoding of every trained component a Clara tool carries
// (LSTM predictor ensemble + vocabulary, algorithm-ID SVM + mined grams,
// scale-out GBDT + training set, hardware params). A server restart loads
// the bundle in well under a second instead of re-synthesizing a corpus
// and retraining — the warm-start path of `clara -serve -model-load`.
//
// Invalidation is structural, not temporal:
//   - Version guards the encoding itself;
//   - LibHash fingerprints the vendor library the predictor's residual
//     targets embed (reverse porting), so a toolchain change voids bundles;
//   - Hash is a sha256 over the canonical (unindented, Hash-cleared) JSON,
//     so corruption or hand-editing is detected on load;
//   - Meta records the training configuration so a caller can refuse a
//     bundle trained under different settings.
//
// JSON is exact for this data: Go marshals float64 as the shortest string
// that parses back to the identical bits, so a load→save→load cycle is
// bit-stable and a reloaded model predicts bit-identically.

// BundleVersion is the encoding version this build reads and writes.
const BundleVersion = 1

// BundleMinor tracks additive, backward-compatible encoding extensions
// within BundleVersion. Minor 1 added persisted int8-quantized recurrent
// weights (predictor.quant). Older bundles (minor 0) decode fine — the
// new fields are omitempty, so their content hashes still verify — and
// the quantized twins are rebuilt on the fly from the f32 weights
// (quantization is deterministic, so the result is bit-identical to a
// persisted copy). Newer-minor bundles read by an older build fail its
// content hash, which is the intended refusal.
const BundleMinor = 1

// Bundle rejection causes, matchable with errors.Is.
var (
	ErrBundleVersion = errors.New("model bundle version mismatch")
	ErrBundleCorrupt = errors.New("model bundle content hash mismatch")
	ErrBundleStale   = errors.New("model bundle library fingerprint mismatch")
	// ErrBundleConfig marks a structurally valid bundle trained under a
	// different configuration than the caller wants (checked by loaders
	// that pin training settings, not by DecodeBundle itself).
	ErrBundleConfig = errors.New("model bundle training config mismatch")
)

// BundleMeta records how the bundled tool was trained.
type BundleMeta struct {
	Quick        bool    `json:"quick"`
	Seed         int64   `json:"seed"`
	TrainSeconds float64 `json:"train_seconds,omitempty"`
	CreatedUnix  int64   `json:"created_unix,omitempty"`
}

type predictorState struct {
	Config    PredictorConfig `json:"config"`
	Vocab     []string        `json:"vocab"`
	Models    []ml.LSTMState  `json:"models"`
	TrainLoss float64         `json:"train_loss"`
	// Quant holds the int8 inference twins, aligned with Models
	// (bundle minor 1+; absent in older bundles).
	Quant []ml.QuantizedLSTMState `json:"quant,omitempty"`
}

type algoIDState struct {
	Grams     []string    `json:"grams"`
	GramClass []int       `json:"gram_class"`
	SVM       ml.SVMState `json:"svm"`
}

type scaleoutState struct {
	Config ScaleoutConfig   `json:"config"`
	GBDT   ml.GBDTState     `json:"gbdt"`
	Train  []ScaleoutSample `json:"train"`
}

// Bundle is the on-disk form of a trained Clara tool.
type Bundle struct {
	Version   int             `json:"version"`
	Minor     int             `json:"minor,omitempty"`
	LibHash   string          `json:"lib_hash"`
	Hash      string          `json:"hash"`
	Meta      BundleMeta      `json:"meta"`
	Predictor *predictorState `json:"predictor,omitempty"`
	AlgoID    *algoIDState    `json:"algo_id,omitempty"`
	Scaleout  *scaleoutState  `json:"scaleout,omitempty"`
	Params    nicsim.Params   `json:"params"`
	Coalesce  CoalesceConfig  `json:"coalesce"`
}

// NewBundle captures a trained tool into bundle form.
func NewBundle(tool *Clara, meta BundleMeta) (*Bundle, error) {
	if tool == nil || tool.Predictor == nil {
		return nil, fmt.Errorf("core: cannot bundle a tool without a predictor")
	}
	b := &Bundle{
		Version:  BundleVersion,
		Minor:    BundleMinor,
		LibHash:  niccc.LibraryFingerprint(),
		Meta:     meta,
		Params:   tool.Params,
		Coalesce: tool.Coalesce,
	}
	pcfg := tool.Predictor.cfg
	pcfg.Workers = 0      // wall-clock knob, not part of the model identity
	pcfg.Quantize = false // runtime path knob; both paths ship in every bundle
	pcfg.Simplify = false // runtime pre-prediction pass, not model identity
	ps := &predictorState{
		Config:    pcfg,
		Vocab:     tool.Predictor.Vocab.Words(),
		TrainLoss: tool.Predictor.TrainLoss,
	}
	tool.Predictor.ensureQuant()
	for i, m := range tool.Predictor.models {
		ps.Models = append(ps.Models, m.Export())
		ps.Quant = append(ps.Quant, tool.Predictor.quants[i].Export())
	}
	b.Predictor = ps
	if tool.AlgoID != nil {
		b.AlgoID = &algoIDState{
			Grams:     append([]string(nil), tool.AlgoID.Grams...),
			GramClass: append([]int(nil), tool.AlgoID.GramClass...),
			SVM:       tool.AlgoID.svm.Export(),
		}
	}
	if tool.Scaleout != nil {
		scfg := tool.Scaleout.cfg
		scfg.Workers = 0
		b.Scaleout = &scaleoutState{
			Config: scfg,
			GBDT:   tool.Scaleout.gbdt.Export(),
			Train:  append([]ScaleoutSample(nil), tool.Scaleout.Train...),
		}
	}
	return b, nil
}

// Tool reconstructs the trained tool. The result predicts bit-identically
// to the tool the bundle was captured from.
func (b *Bundle) Tool() (*Clara, error) {
	if b.Predictor == nil {
		return nil, fmt.Errorf("core: bundle has no predictor")
	}
	vocab, err := ir.VocabFromWords(b.Predictor.Vocab)
	if err != nil {
		return nil, fmt.Errorf("core: bundle vocabulary: %w", err)
	}
	p := &Predictor{cfg: b.Predictor.Config, Vocab: vocab, TrainLoss: b.Predictor.TrainLoss}
	if len(b.Predictor.Models) == 0 {
		return nil, fmt.Errorf("core: bundle predictor has no models")
	}
	if nq := len(b.Predictor.Quant); nq != 0 && nq != len(b.Predictor.Models) {
		return nil, fmt.Errorf("core: bundle has %d quantized states for %d models",
			nq, len(b.Predictor.Models))
	}
	for i, st := range b.Predictor.Models {
		m, err := ml.NewLSTMFromState(st)
		if err != nil {
			return nil, fmt.Errorf("core: bundle model %d: %w", i, err)
		}
		p.models = append(p.models, m)
		if i < len(b.Predictor.Quant) {
			q, err := ml.NewQuantizedLSTMFromState(b.Predictor.Quant[i], m)
			if err != nil {
				return nil, fmt.Errorf("core: bundle model %d: %w", i, err)
			}
			p.quants = append(p.quants, q)
		}
	}
	// Pre-minor-1 bundles carry no quantized states: rebuild the twins
	// from the f32 weights (deterministic, so identical to persisted).
	p.ensureQuant()
	tool := &Clara{Predictor: p, Params: b.Params, Coalesce: b.Coalesce}
	if b.AlgoID != nil {
		if len(b.AlgoID.Grams) != len(b.AlgoID.GramClass) {
			return nil, fmt.Errorf("core: bundle algo-id has %d grams but %d classes",
				len(b.AlgoID.Grams), len(b.AlgoID.GramClass))
		}
		svm, err := ml.NewSVMFromState(b.AlgoID.SVM)
		if err != nil {
			return nil, fmt.Errorf("core: bundle algo-id: %w", err)
		}
		tool.AlgoID = &AlgoIdentifier{
			Grams:     append([]string(nil), b.AlgoID.Grams...),
			GramClass: append([]int(nil), b.AlgoID.GramClass...),
			svm:       svm,
		}
	}
	if b.Scaleout != nil {
		gbdt, err := ml.NewGBDTFromState(b.Scaleout.GBDT)
		if err != nil {
			return nil, fmt.Errorf("core: bundle scale-out: %w", err)
		}
		tool.Scaleout = &ScaleoutModel{
			cfg:   b.Scaleout.Config.norm(),
			gbdt:  gbdt,
			Train: append([]ScaleoutSample(nil), b.Scaleout.Train...),
		}
	}
	return tool, nil
}

// contentHash computes the canonical digest: sha256 over the compact JSON
// encoding with the Hash field cleared. Go's json package emits struct
// fields in declaration order and map keys sorted, so the encoding — and
// the digest — is deterministic.
func (b *Bundle) contentHash() (string, error) {
	c := *b
	c.Hash = ""
	blob, err := json.Marshal(&c)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// EncodeBundle seals the bundle (fills Hash) and renders it as indented
// JSON for the model file.
func EncodeBundle(b *Bundle) ([]byte, error) {
	h, err := b.contentHash()
	if err != nil {
		return nil, err
	}
	b.Hash = h
	return json.MarshalIndent(b, "", " ")
}

// DecodeBundle parses and validates a bundle: encoding version, content
// hash, and vendor-library fingerprint must all match this build. Failures
// wrap ErrBundleVersion / ErrBundleCorrupt / ErrBundleStale so callers can
// fall back to training.
func DecodeBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("core: %w: %v", ErrBundleCorrupt, err)
	}
	if b.Version != BundleVersion {
		return nil, fmt.Errorf("core: %w: bundle v%d, this build reads v%d",
			ErrBundleVersion, b.Version, BundleVersion)
	}
	want, err := b.contentHash()
	if err != nil {
		return nil, err
	}
	if b.Hash != want {
		return nil, fmt.Errorf("core: %w: stored %.12s…, computed %.12s…",
			ErrBundleCorrupt, b.Hash, want)
	}
	if lib := niccc.LibraryFingerprint(); b.LibHash != lib {
		return nil, fmt.Errorf("core: %w: bundle %.12s…, library %.12s…",
			ErrBundleStale, b.LibHash, lib)
	}
	return &b, nil
}

// SaveBundle writes the bundle atomically (temp file + rename), so a
// crash mid-write never leaves a truncated model file behind.
func SaveBundle(path string, b *Bundle) error {
	blob, err := EncodeBundle(b)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".clara-bundle-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadBundle reads and validates a bundle file.
func LoadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeBundle(data)
}
