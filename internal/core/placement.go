package core

import (
	"context"
	"fmt"
	"math"

	"clara/internal/analysis"
	"clara/internal/ilp"
	"clara/internal/ir"
	"clara/internal/isa"
	"clara/internal/nicsim"
)

// placeRegions are the memory levels state may be placed in, in hierarchy
// order (LMEM is core-private and excluded, §4.3).
var placeRegions = []isa.Region{isa.CLS, isa.CTM, isa.IMEM, isa.EMEM}

// SuggestPlacement formulates the §4.3 ILP — minimize Σ L_j · f_i · x_ij
// subject to per-level capacity — and solves it exactly.
//
// The latencies and capacities come from the target's public databook
// numbers (the Params); the access frequencies f_i come from the
// workload-specific host profile.
func SuggestPlacement(mod *ir.Module, prof *HostProfile, params nicsim.Params) (nicsim.Placement, error) {
	return SuggestPlacementContext(context.Background(), mod, prof, params)
}

// SuggestPlacementContext is SuggestPlacement with cancellation: the
// context is checked before the branch-and-bound solve (the placement
// stage's only potentially long step — NF state counts are small, so one
// pre-solve check keeps a canceled request from entering the search at
// all).
func SuggestPlacementContext(ctx context.Context, mod *ir.Module, prof *HostProfile, params nicsim.Params) (nicsim.Placement, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: placement for %s: %w", mod.Name, err)
	}
	return placeWithFreq(mod, prof.GlobalFreq, params)
}

// SuggestPlacementStatic solves the same §4.3 ILP with the frequencies
// f_i estimated statically (analysis.ComputeStateProfile: loop trip
// counts × branch probabilities) instead of measured by host profiling.
// It needs no workload, no interpreter run, and no profile — the
// placement a one-shot `clara -lint`-grade invocation can produce — and
// on the element library it matches the dynamically profiled placement
// (pinned by TestStaticPlacement*).
func SuggestPlacementStatic(mod *ir.Module, params nicsim.Params) (nicsim.Placement, error) {
	sp := analysis.ComputeStateProfile(mod)
	return placeWithFreq(mod, sp.GlobalFreq(), params)
}

// placeWithFreq formulates and solves the placement ILP for the given
// per-structure access frequencies.
func placeWithFreq(mod *ir.Module, freq map[string]float64, params nicsim.Params) (nicsim.Placement, error) {
	var items []*ir.Global
	for _, g := range mod.Globals {
		items = append(items, g)
	}
	if len(items) == 0 {
		return nicsim.Placement{}, nil
	}
	prob := &ilp.Problem{Cap: make([]int, len(placeRegions))}
	for j, r := range placeRegions {
		prob.Cap[j] = params.Regions[r].Capacity
	}
	for _, g := range items {
		row := make([]float64, len(placeRegions))
		for j, r := range placeRegions {
			if g.SizeBytes() > params.Regions[r].Capacity {
				row[j] = math.Inf(1)
				continue
			}
			row[j] = float64(params.Regions[r].Latency) * freq[g.Name]
		}
		prob.Cost = append(prob.Cost, row)
		prob.Size = append(prob.Size, g.SizeBytes())
	}
	assign, _, err := ilp.Solve(prob)
	if err != nil {
		return nil, fmt.Errorf("core: placement ILP for %s: %w", mod.Name, err)
	}
	out := nicsim.Placement{}
	for i, g := range items {
		out[g.Name] = placeRegions[assign[i]]
	}
	return out, nil
}

// NaivePlacement is the §5.5 baseline: every structure in EMEM.
func NaivePlacement(mod *ir.Module) nicsim.Placement {
	out := nicsim.Placement{}
	for _, g := range mod.Globals {
		out[g.Name] = isa.EMEM
	}
	return out
}

// PlacementCandidates enumerates the placements the §5.8 "expert" sweeps.
// Scalars are grouped as a single unit to bound the search (documented
// substitution: the paper's exhaustive sweep is per data structure on a
// hardware testbed; grouping the byte-sized scalars keeps the simulated
// sweep exhaustive over the structures that matter — the maps and arrays).
func PlacementCandidates(mod *ir.Module, params nicsim.Params) []nicsim.Placement {
	var big []*ir.Global // maps and arrays, swept individually
	var scalars []*ir.Global
	for _, g := range mod.Globals {
		if g.Kind == ir.GScalar {
			scalars = append(scalars, g)
		} else {
			big = append(big, g)
		}
	}
	units := len(big)
	if len(scalars) > 0 {
		units++
	}
	total := 1
	for i := 0; i < units; i++ {
		total *= len(placeRegions)
	}
	var out []nicsim.Placement
	for code := 0; code < total; code++ {
		c := code
		pl := nicsim.Placement{}
		used := map[isa.Region]int{}
		ok := true
		for _, g := range big {
			r := placeRegions[c%len(placeRegions)]
			c /= len(placeRegions)
			pl[g.Name] = r
			used[r] += g.SizeBytes()
		}
		if len(scalars) > 0 {
			r := placeRegions[c%len(placeRegions)]
			for _, g := range scalars {
				pl[g.Name] = r
				used[r] += g.SizeBytes()
			}
		}
		for r, b := range used {
			if b > params.Regions[r].Capacity {
				ok = false
			}
		}
		if ok {
			out = append(out, pl)
		}
	}
	return out
}
