package interp

import (
	"fmt"

	"clara/internal/ir"
)

// call executes a framework API call instruction.
func (m *Machine) call(in *cInstr, block int) error {
	p := m.pkt
	switch in.api {
	case apiPktLen:
		m.vals[in.id] = uint64(p.Len)
	case apiEthType:
		m.vals[in.id] = uint64(p.EthType)
	case apiIPProto:
		m.vals[in.id] = uint64(p.Proto)
	case apiIPSrc:
		m.vals[in.id] = uint64(p.SrcIP)
	case apiIPDst:
		m.vals[in.id] = uint64(p.DstIP)
	case apiIPTTL:
		m.vals[in.id] = uint64(p.TTL)
	case apiIPLen:
		m.vals[in.id] = uint64(p.IPLen)
	case apiIPHL:
		m.vals[in.id] = uint64(p.IPHL)
	case apiTCPSport:
		m.vals[in.id] = uint64(p.SrcPort)
	case apiTCPDport:
		m.vals[in.id] = uint64(p.DstPort)
	case apiTCPSeq:
		m.vals[in.id] = uint64(p.Seq)
	case apiTCPAck:
		m.vals[in.id] = uint64(p.Ack)
	case apiTCPFlags:
		m.vals[in.id] = uint64(p.TCPFlag)
	case apiTCPOff:
		m.vals[in.id] = uint64(p.TCPOff)
	case apiUDPSport:
		m.vals[in.id] = uint64(p.SrcPort)
	case apiUDPDport:
		m.vals[in.id] = uint64(p.DstPort)
	case apiPayload:
		i := m.arg(in.a0)
		if i < uint64(len(p.Payload)) {
			m.vals[in.id] = uint64(p.Payload[i])
		} else {
			m.vals[in.id] = 0
		}
	case apiPayloadLen:
		m.vals[in.id] = uint64(len(p.Payload))
	case apiTime:
		m.vals[in.id] = p.Time

	case apiSetIPSrc:
		p.SrcIP = uint32(m.arg(in.a0))
	case apiSetIPDst:
		p.DstIP = uint32(m.arg(in.a0))
	case apiSetIPTTL:
		p.TTL = uint8(m.arg(in.a0))
	case apiSetTCPSport, apiSetUDPSport:
		p.SrcPort = uint16(m.arg(in.a0))
	case apiSetTCPDport, apiSetUDPDport:
		p.DstPort = uint16(m.arg(in.a0))
	case apiSetTCPSeq:
		p.Seq = uint32(m.arg(in.a0))
	case apiSetTCPAck:
		p.Ack = uint32(m.arg(in.a0))
	case apiSetTCPFlags:
		p.TCPFlag = uint8(m.arg(in.a0))
	case apiSetPayload:
		i := m.arg(in.a0)
		if i < uint64(len(p.Payload)) {
			p.Payload[i] = byte(m.arg(in.a1))
		}

	case apiCsumUpdate:
		p.CsumUpdated = true
		m.emitAPI(in, int(p.IPLen), 0, block)
		return nil
	case apiSend:
		p.OutPort = int32(m.arg(in.a0))
	case apiDrop:
		p.OutPort = -1

	case apiHash32:
		m.vals[in.id] = uint64(Hash32(m.arg(in.a0)))
	case apiRand32:
		m.rng = m.rng*6364136223846793005 + 1442695040888963407
		m.vals[in.id] = (m.rng >> 32) & 0xffffffff
	case apiEwmaRate:
		// EWMA with alpha = 1/16, computed in double precision exactly as
		// the host framework does (the divergence the linter warns about).
		m.ewma += (float64(uint32(m.arg(in.a0))) - m.ewma) / 16
		m.vals[in.id] = uint64(uint32(m.ewma))
	case apiCRC32HW:
		off := int(m.arg(in.a0))
		n := int(m.arg(in.a1))
		m.vals[in.id] = uint64(CRC32(p.Payload, off, n))
		m.emitAPI(in, clampLen(p.Payload, off, n), 0, block)
		return nil
	case apiLPMHW:
		m.vals[in.id] = uint64(m.lpmLookup(uint32(m.arg(in.a0))))

	case apiMapFind, apiMapContains, apiMapInsert, apiMapRemove, apiMapSize:
		return m.mapOp(in, block)

	case apiVecPush, apiVecGet, apiVecSet, apiVecDelete, apiVecLen:
		return m.vecOp(in, block)

	default:
		return fmt.Errorf("interp: unimplemented API %q", m.strs[in.sidx].callee)
	}
	if in.api < apiMapFind {
		m.emitAPI(in, 0, 0, block)
	}
	return nil
}

// clampLen returns how many payload bytes [off, off+n) actually covers.
func clampLen(payload []byte, off, n int) int {
	if off < 0 || off >= len(payload) || n <= 0 {
		return 0
	}
	if off+n > len(payload) {
		return len(payload) - off
	}
	return n
}

// Hash32 is the deterministic 64→32-bit mix used by the hash32 intrinsic
// on both platforms (the NIC has a hash engine with identical semantics).
func Hash32(k uint64) uint32 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return uint32(k)
}

var crcTable [256]uint32

func init() {
	const poly = 0xEDB88320
	for i := range crcTable {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = poly ^ (c >> 1)
			} else {
				c >>= 1
			}
		}
		crcTable[i] = c
	}
}

// CRC32 computes the IEEE CRC-32 of payload[off:off+n], clamped to the
// payload bounds (firmware semantics: short reads return what exists).
func CRC32(payload []byte, off, n int) uint32 {
	if off < 0 || off >= len(payload) {
		return 0
	}
	end := off + n
	if end > len(payload) {
		end = len(payload)
	}
	crc := ^uint32(0)
	for _, b := range payload[off:end] {
		crc = crcTable[byte(crc)^b] ^ (crc >> 8)
	}
	return ^crc
}

func (m *Machine) lpmLookup(addr uint32) uint32 {
	best := -1
	var port uint32
	for _, r := range m.cfg.LPMTable {
		if r.Len > 32 || r.Len < 0 {
			continue
		}
		var mask uint32
		if r.Len > 0 {
			mask = ^uint32(0) << (32 - r.Len)
		}
		if addr&mask == r.Prefix&mask && r.Len > best {
			best = r.Len
			port = r.Port
		}
	}
	if best < 0 {
		return 0xffffffff
	}
	return port
}

// mapOp executes a stateful map API call under the configured semantics.
func (m *Machine) mapOp(in *cInstr, block int) error {
	g := m.gl[in.gidx]
	if g.g.Kind != ir.GMap {
		return fmt.Errorf("interp: %s on non-map %q", m.strs[in.sidx].callee, m.strs[in.sidx].global)
	}
	probes := 0
	var addr uint64
	switch m.cfg.Mode {
	case HostMap:
		if in.nargs > 0 {
			addr = uint64(Hash32(m.arg(in.a0)))
		}
		switch in.api {
		case apiMapFind:
			m.vals[in.id] = g.hmap[m.arg(in.a0)]
			probes = 1
		case apiMapContains:
			_, ok := g.hmap[m.arg(in.a0)]
			if ok {
				m.vals[in.id] = 1
			} else {
				m.vals[in.id] = 0
			}
			probes = 1
		case apiMapInsert:
			// Click HashMaps grow elastically; capacity is a hint only.
			g.hmap[m.arg(in.a0)] = m.arg(in.a1)
			probes = 1
		case apiMapRemove:
			delete(g.hmap, m.arg(in.a0))
			probes = 1
		case apiMapSize:
			m.vals[in.id] = uint64(len(g.hmap))
		}
	case NICMap:
		nm := g.nmap
		key := m.arg(in.a0)
		addr = uint64(nm.bucket(key))
		switch in.api {
		case apiMapFind, apiMapContains:
			slot, n := nm.lookup(key)
			probes = n
			if in.api == apiMapFind {
				if slot >= 0 {
					m.vals[in.id] = nm.slots[slot].val
				} else {
					m.vals[in.id] = 0
				}
			} else {
				if slot >= 0 {
					m.vals[in.id] = 1
				} else {
					m.vals[in.id] = 0
				}
			}
		case apiMapInsert:
			probes = nm.insert(key, m.arg(in.a1))
		case apiMapRemove:
			slot, n := nm.lookup(key)
			probes = n
			if slot >= 0 {
				// Deletions only mark the entry invalid (§3.3): the slot is
				// reusable by later inserts but never compacted.
				nm.slots[slot].state = 2
				nm.size--
			}
		case apiMapSize:
			m.vals[in.id] = uint64(nm.size)
		}
	}
	m.emitAPI(in, probes, addr, block)
	return nil
}

func (nm *nicMapState) bucket(key uint64) int {
	return int(Hash32(key)) % nm.buckets * BucketSlots
}

// lookup returns the slot index holding key (or -1) and the probe count.
func (nm *nicMapState) lookup(key uint64) (int, int) {
	base := nm.bucket(key)
	for i := 0; i < BucketSlots; i++ {
		s := &nm.slots[base+i]
		st := nm.st(s)
		if st == 0 {
			return -1, i + 1 // free slot terminates the probe chain
		}
		if st == 1 && s.key == key {
			return base + i, i + 1
		}
	}
	return -1, BucketSlots
}

// insert stores key→val, returning probes. A full bucket drops the insert
// (no dynamic allocation on the NIC).
func (nm *nicMapState) insert(key, val uint64) int {
	base := nm.bucket(key)
	free := -1
	for i := 0; i < BucketSlots; i++ {
		s := &nm.slots[base+i]
		st := nm.st(s)
		if st == 1 && s.key == key {
			s.val = val
			return i + 1
		}
		if st != 1 && free < 0 {
			free = base + i
		}
		if st == 0 {
			break
		}
	}
	if free >= 0 {
		if nm.st(&nm.slots[free]) != 1 {
			nm.size++
		}
		nm.slots[free] = mslot{key: key, val: val, state: 1, gen: nm.gen}
		return free - base + 1
	}
	nm.failedInserts++
	return BucketSlots
}

// vecOp executes a vector API call under the configured semantics. Probe
// counts reflect the §3.3 divergence: a host delete shifts the tail (O(n)
// slot touches) while the NIC delete tombstones one slot.
func (m *Machine) vecOp(in *cInstr, block int) error {
	g := m.gl[in.gidx]
	if g.g.Kind != ir.GVec {
		return fmt.Errorf("interp: %s on non-vector %q", m.strs[in.sidx].callee, m.strs[in.sidx].global)
	}
	v := g.vec
	probes := 0
	var addr uint64
	switch in.api {
	case apiVecPush:
		val := m.arg(in.a0)
		if v.nic {
			// First free (or tombstoned) slot; full vectors drop the push.
			placed := false
			for i := 0; i < v.cap; i++ {
				probes++
				if !v.valid[i] {
					v.vals[i] = val
					v.valid[i] = true
					v.live++
					addr = uint64(i)
					placed = true
					break
				}
			}
			if placed {
				m.vals[in.id] = 1
			} else {
				v.dropped++
				m.vals[in.id] = 0
			}
		} else {
			v.vals = append(v.vals, val)
			v.live++
			probes = 1
			addr = uint64(len(v.vals) - 1)
			m.vals[in.id] = 1
		}
	case apiVecGet:
		i := m.arg(in.a0)
		probes = 1
		addr = i
		m.vals[in.id] = 0
		if v.nic {
			if i < uint64(v.cap) && v.valid[i] {
				m.vals[in.id] = v.vals[i]
			}
		} else if i < uint64(len(v.vals)) {
			m.vals[in.id] = v.vals[i]
		}
	case apiVecSet:
		i := m.arg(in.a0)
		val := m.arg(in.a1)
		probes = 1
		addr = i
		if v.nic {
			if i < uint64(v.cap) {
				if !v.valid[i] {
					v.live++
				}
				v.vals[i] = val
				v.valid[i] = true
			}
		} else if i < uint64(len(v.vals)) {
			v.vals[i] = val
		}
	case apiVecDelete:
		i := m.arg(in.a0)
		addr = i
		if v.nic {
			// NIC library: mark invalid, one slot touched.
			probes = 1
			if i < uint64(v.cap) && v.valid[i] {
				v.valid[i] = false
				v.live--
			}
		} else {
			// Click Vector: shift the tail down.
			if i < uint64(len(v.vals)) {
				probes = len(v.vals) - int(i)
				copy(v.vals[i:], v.vals[i+1:])
				v.vals = v.vals[:len(v.vals)-1]
				v.live--
			} else {
				probes = 1
			}
		}
	case apiVecLen:
		m.vals[in.id] = uint64(v.live)
	}
	m.emitAPI(in, probes, addr, block)
	return nil
}

// --- State inspection and seeding (element setup + tests) ---

// SetScalar sets a scalar global.
func (m *Machine) SetScalar(name string, v uint64) error {
	gi, ok := m.gidx[name]
	if !ok || m.gl[gi].g.Kind != ir.GScalar {
		return fmt.Errorf("interp: no scalar global %q", name)
	}
	m.gl[gi].scalar = v
	return nil
}

// Scalar reads a scalar global.
func (m *Machine) Scalar(name string) (uint64, error) {
	gi, ok := m.gidx[name]
	if !ok || m.gl[gi].g.Kind != ir.GScalar {
		return 0, fmt.Errorf("interp: no scalar global %q", name)
	}
	return m.gl[gi].scalar, nil
}

// SetArray fills a global array prefix with vals.
func (m *Machine) SetArray(name string, vals []uint64) error {
	gi, ok := m.gidx[name]
	if !ok || m.gl[gi].g.Kind != ir.GArray {
		return fmt.Errorf("interp: no array global %q", name)
	}
	a := m.gl[gi].array
	if len(vals) > len(a) {
		return fmt.Errorf("interp: array %q overflow (%d > %d)", name, len(vals), len(a))
	}
	copy(a, vals)
	return nil
}

// ArrayAt reads one element of a global array.
func (m *Machine) ArrayAt(name string, i int) (uint64, error) {
	gi, ok := m.gidx[name]
	if !ok || m.gl[gi].g.Kind != ir.GArray {
		return 0, fmt.Errorf("interp: no array global %q", name)
	}
	a := m.gl[gi].array
	if i < 0 || i >= len(a) {
		return 0, fmt.Errorf("interp: array %q index %d out of range", name, i)
	}
	return a[i], nil
}

// MapSeed inserts key→val into a map global under the active semantics.
func (m *Machine) MapSeed(name string, key, val uint64) error {
	gi, ok := m.gidx[name]
	if !ok || m.gl[gi].g.Kind != ir.GMap {
		return fmt.Errorf("interp: no map global %q", name)
	}
	g := m.gl[gi]
	if m.cfg.Mode == HostMap {
		g.hmap[key] = val
	} else {
		g.nmap.insert(key, val)
	}
	return nil
}

// MapGet reads a map entry, reporting presence.
func (m *Machine) MapGet(name string, key uint64) (uint64, bool, error) {
	gi, ok := m.gidx[name]
	if !ok || m.gl[gi].g.Kind != ir.GMap {
		return 0, false, fmt.Errorf("interp: no map global %q", name)
	}
	g := m.gl[gi]
	if m.cfg.Mode == HostMap {
		v, ok := g.hmap[key]
		return v, ok, nil
	}
	slot, _ := g.nmap.lookup(key)
	if slot < 0 {
		return 0, false, nil
	}
	return g.nmap.slots[slot].val, true, nil
}

// MapLen returns the live entry count of a map global.
func (m *Machine) MapLen(name string) (int, error) {
	gi, ok := m.gidx[name]
	if !ok || m.gl[gi].g.Kind != ir.GMap {
		return 0, fmt.Errorf("interp: no map global %q", name)
	}
	g := m.gl[gi]
	if m.cfg.Mode == HostMap {
		return len(g.hmap), nil
	}
	return g.nmap.size, nil
}

// FailedInserts returns the number of dropped inserts on a NIC-mode map.
func (m *Machine) FailedInserts(name string) (int, error) {
	gi, ok := m.gidx[name]
	if !ok || m.gl[gi].g.Kind != ir.GMap || m.gl[gi].nmap == nil {
		return 0, fmt.Errorf("interp: no NIC-mode map %q", name)
	}
	return m.gl[gi].nmap.failedInserts, nil
}

// VecLive returns the live element count of a vector global.
func (m *Machine) VecLive(name string) (int, error) {
	gi, ok := m.gidx[name]
	if !ok || m.gl[gi].g.Kind != ir.GVec {
		return 0, fmt.Errorf("interp: no vector global %q", name)
	}
	return m.gl[gi].vec.live, nil
}

// VecAt reads element i of a vector global (ok=false for empty/invalid
// slots).
func (m *Machine) VecAt(name string, i int) (uint64, bool, error) {
	gi, ok := m.gidx[name]
	if !ok || m.gl[gi].g.Kind != ir.GVec {
		return 0, false, fmt.Errorf("interp: no vector global %q", name)
	}
	v := m.gl[gi].vec
	if v.nic {
		if i < 0 || i >= v.cap || !v.valid[i] {
			return 0, false, nil
		}
		return v.vals[i], true, nil
	}
	if i < 0 || i >= len(v.vals) {
		return 0, false, nil
	}
	return v.vals[i], true, nil
}

// VecDropped returns the number of pushes dropped by a full NIC vector.
func (m *Machine) VecDropped(name string) (int, error) {
	gi, ok := m.gidx[name]
	if !ok || m.gl[gi].g.Kind != ir.GVec || !m.gl[gi].vec.nic {
		return 0, fmt.Errorf("interp: no NIC-mode vector %q", name)
	}
	return m.gl[gi].vec.dropped, nil
}

// ResetState zeroes all stateful globals (between experiment runs).
func (m *Machine) ResetState() {
	for _, g := range m.gl {
		switch g.g.Kind {
		case ir.GScalar:
			g.scalar = 0
		case ir.GArray:
			for i := range g.array {
				g.array[i] = 0
			}
		case ir.GMap:
			if g.hmap != nil {
				g.hmap = make(map[uint64]uint64)
			}
			if g.nmap != nil {
				g.nmap.reset()
			}
		case ir.GVec:
			v := g.vec
			v.live = 0
			v.dropped = 0
			if v.nic {
				for i := range v.valid {
					v.valid[i] = false
					v.vals[i] = 0
				}
			} else {
				v.vals = nil
			}
		}
	}
}
