package experiments

import "io"

// Experiment names one regenerable table/figure.
type Experiment struct {
	ID  string
	Run func(*Context) (*Table, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"figure1", Figure1},
		{"table1", Table1},
		{"table2", Table2},
		{"figure8", Figure8},
		{"figure8-ablation", Figure8Ablation},
		{"reverse-port-ablation", ReversePortAblation},
		{"figure9", Figure9},
		{"figure10a", Figure10a},
		{"figure10b", Figure10b},
		{"figure10c", Figure10c},
		{"figure11a", Figure11a},
		{"figure11b", Figure11b},
		{"figure11cd", Figure11cd},
		{"figure11ef", Figure11ef},
		{"figure12", Figure12},
		{"figure13", Figure13},
		{"figure14a", Figure14a},
		{"figure14bc", Figure14bc},
		{"figure15", Figure15},
		{"figure16", Figure16},
	}
}

// Get returns the experiment with the given ID, or nil.
func Get(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			out := e
			return &out
		}
	}
	return nil
}

// RunAll executes every experiment, printing each table to w as it
// completes. It stops at the first failure.
func RunAll(ctx *Context, w io.Writer) error {
	for _, e := range All() {
		t, err := e.Run(ctx)
		if err != nil {
			return err
		}
		t.Fprint(w)
	}
	return nil
}
