package ml

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"clara/internal/ml/vek"
)

// --- MLP (the "DNN" baseline of §5.2 and §5.4) ---

// MLPConfig configures a fully connected network.
type MLPConfig struct {
	Layers []int // sizes including input and output
	LR     float64
	Epochs int
	Seed   int64
	// Classification switches the output to softmax + cross-entropy.
	Classification bool
	TargetScale    float64 // regression target scaling
	// Batch/Workers mirror LSTMConfig: samples per optimizer step and
	// goroutines per minibatch. 0/1 keeps per-sample updates; results are
	// bit-identical for any worker count (fixed-order slot reduction).
	Batch   int
	Workers int
}

func (c MLPConfig) norm() MLPConfig {
	if c.LR == 0 {
		c.LR = 0.003
	}
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	if c.TargetScale == 0 {
		c.TargetScale = 1
	}
	if c.Batch == 0 {
		c.Batch = 1
	}
	return c
}

// MLP is a ReLU multilayer perceptron.
type MLP struct {
	cfg MLPConfig
	// W[l] is (out × (in+1)) row-major with bias in the last column.
	W [][]float64
}

// NewMLP allocates a randomly initialized network.
func NewMLP(cfg MLPConfig) *MLP {
	cfg = cfg.norm()
	rng := rand.New(rand.NewSource(cfg.Seed + 301))
	m := &MLP{cfg: cfg}
	for l := 0; l+1 < len(cfg.Layers); l++ {
		in, out := cfg.Layers[l], cfg.Layers[l+1]
		w := make([]float64, out*(in+1))
		randInit(rng, w, math.Sqrt(2/float64(in)))
		m.W = append(m.W, w)
	}
	return m
}

// mlpScratch holds forward activations and backward deltas for one pass.
// Not goroutine-safe; Predict* borrow one from a pool, trainers keep one
// per worker.
type mlpScratch struct {
	ar   vek.Arena
	acts [][]float64
}

var mlpScratchPool = sync.Pool{New: func() any { return new(mlpScratch) }}

// forwardScratch returns all layer activations (acts[0] = input, not
// copied). The returned slices live in sc's arena until its next Reset.
func (m *MLP) forwardScratch(sc *mlpScratch, x []float64) [][]float64 {
	sc.ar.Reset()
	if cap(sc.acts) < len(m.W)+1 {
		sc.acts = make([][]float64, 0, len(m.W)+1)
	}
	acts := append(sc.acts[:0], x)
	cur := x
	for l, w := range m.W {
		in := len(cur)
		out := len(w) / (in + 1)
		next := sc.ar.Take(out)
		for o := 0; o < out; o++ {
			row := w[o*(in+1) : (o+1)*(in+1)]
			next[o] = vek.Dot(row[:in], cur) + row[in]
			if l+1 < len(m.W) && next[o] < 0 {
				next[o] = 0 // ReLU on hidden layers
			}
		}
		acts = append(acts, next)
		cur = next
	}
	sc.acts = acts
	return acts
}

// forward keeps the historical signature; fresh scratch means the
// returned activations stay valid.
func (m *MLP) forward(x []float64) [][]float64 {
	return m.forwardScratch(new(mlpScratch), x)
}

// PredictVec returns the raw output vector (rescaled for regression).
// Safe for concurrent use.
func (m *MLP) PredictVec(x []float64) []float64 {
	sc := mlpScratchPool.Get().(*mlpScratch)
	out := m.forwardScratch(sc, x)
	last := append([]float64(nil), out[len(out)-1]...)
	mlpScratchPool.Put(sc)
	if !m.cfg.Classification {
		for i := range last {
			last[i] *= m.cfg.TargetScale
		}
	}
	return last
}

// Predict returns the first output (scalar regression).
func (m *MLP) Predict(x []float64) float64 { return m.PredictVec(x)[0] }

// PredictClass returns the argmax output. Safe for concurrent use.
func (m *MLP) PredictClass(x []float64) int {
	sc := mlpScratchPool.Get().(*mlpScratch)
	out := m.forwardScratch(sc, x)
	last := out[len(out)-1]
	best, bestV := 0, math.Inf(-1)
	for i, v := range last {
		if v > bestV {
			bestV = v
			best = i
		}
	}
	mlpScratchPool.Put(sc)
	return best
}

// trainStep runs one example's forward+backward on sc, accumulating into
// grads; target semantics depend on the mode.
func (m *MLP) trainStep(sc *mlpScratch, x, target []float64, grads [][]float64) float64 {
	acts := m.forwardScratch(sc, x)
	L := len(m.W)
	out := acts[L]
	delta := sc.ar.Take(len(out))
	loss := 0.0
	if m.cfg.Classification {
		// softmax + CE; target is one-hot.
		maxv := math.Inf(-1)
		for _, v := range out {
			if v > maxv {
				maxv = v
			}
		}
		var z float64
		probs := sc.ar.Take(len(out))
		for i, v := range out {
			probs[i] = math.Exp(v - maxv)
			z += probs[i]
		}
		for i := range probs {
			probs[i] /= z
			delta[i] = probs[i] - target[i]
			if target[i] > 0 {
				loss -= math.Log(probs[i] + 1e-12)
			}
		}
	} else {
		for i := range out {
			d := out[i] - target[i]/m.cfg.TargetScale
			delta[i] = d
			loss += 0.5 * d * d
		}
	}
	for l := L - 1; l >= 0; l-- {
		in := acts[l]
		w := m.W[l]
		g := grads[l]
		nin := len(in)
		prevDelta := sc.ar.Take(nin)
		for o := 0; o < len(delta); o++ {
			row := w[o*(nin+1) : (o+1)*(nin+1)]
			grow := g[o*(nin+1) : (o+1)*(nin+1)]
			d := delta[o]
			vek.Axpy(d, in, grow[:nin])
			grow[nin] += d
			vek.Axpy(d, row[:nin], prevDelta)
		}
		if l > 0 {
			// ReLU derivative on the previous layer's activations.
			for j := range prevDelta {
				if acts[l][j] <= 0 {
					prevDelta[j] = 0
				}
			}
		}
		delta = prevDelta
	}
	return loss
}

// TrainMLP trains on (X, targets); for classification, targets are one-hot
// rows. Returns the final mean loss. With cfg.Batch > 1, minibatches are
// sharded across cfg.Workers goroutines with the same deterministic
// slot-ordered gradient reduction as TrainLSTMContext.
func TrainMLP(X [][]float64, targets [][]float64, cfg MLPConfig) (*MLP, float64) {
	m := NewMLP(cfg)
	cfg = m.cfg
	nparams := 0
	for _, w := range m.W {
		nparams += len(w)
	}
	// Per-layer gradient views over one flat buffer for Adam; model
	// weights likewise re-homed into one flat buffer.
	paramsFlat := make([]float64, nparams)
	layerViews := func(flat []float64) [][]float64 {
		views := make([][]float64, len(m.W))
		off := 0
		for l, w := range m.W {
			views[l] = flat[off : off+len(w)]
			off += len(w)
		}
		return views
	}
	pviews := layerViews(paramsFlat)
	for l, w := range m.W {
		copy(pviews[l], w)
		m.W[l] = pviews[l]
	}
	gradsFlat := make([]float64, nparams)

	B := cfg.Batch
	if B > len(X) && len(X) > 0 {
		B = len(X)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > B {
		workers = B
	}
	slots := make([][]float64, B)
	slotViews := make([][][]float64, B)
	slotLoss := make([]float64, B)
	for b := range slots {
		slots[b] = make([]float64, nparams)
		slotViews[b] = layerViews(slots[b])
	}
	scratch := make([]*mlpScratch, workers)
	for w := range scratch {
		scratch[w] = new(mlpScratch)
	}
	runSlot := func(b, i int, sc *mlpScratch) {
		vek.Zero(slots[b])
		slotLoss[b] = m.trainStep(sc, X[i], targets[i], slotViews[b])
	}

	opt := NewAdam(nparams, cfg.LR, 5)
	rng := rand.New(rand.NewSource(cfg.Seed + 302))
	last := 0.0
	for e := 0; e < cfg.Epochs; e++ {
		perm := rng.Perm(len(X))
		total := 0.0
		for start := 0; start < len(perm); start += B {
			batch := perm[start:min(start+B, len(perm))]
			nw := min(workers, len(batch))
			if nw <= 1 {
				for b, i := range batch {
					runSlot(b, i, scratch[0])
				}
			} else {
				var next atomic.Int64
				var wg sync.WaitGroup
				for w := 0; w < nw; w++ {
					wg.Add(1)
					go func(sc *mlpScratch) {
						defer wg.Done()
						for {
							b := int(next.Add(1)) - 1
							if b >= len(batch) {
								return
							}
							runSlot(b, batch[b], sc)
						}
					}(scratch[w])
				}
				wg.Wait()
			}
			vek.Zero(gradsFlat)
			for b := range batch {
				vek.Add(slots[b], gradsFlat)
				total += slotLoss[b]
			}
			opt.Step(paramsFlat, gradsFlat)
		}
		last = total / float64(len(X))
	}
	return m, last
}

// OneHot builds one-hot target rows for labels in [0, n).
func OneHot(labels []int, n int) [][]float64 {
	out := make([][]float64, len(labels))
	for i, l := range labels {
		row := make([]float64, n)
		if l >= 0 && l < n {
			row[l] = 1
		}
		out[i] = row
	}
	return out
}

// --- 1-D CNN over token sequences (the "CNN" baseline of §5.2) ---

// CNNConfig configures the sequence CNN.
type CNNConfig struct {
	Vocab       int
	Filters     int
	Width       int // receptive field in tokens
	Out         int
	LR          float64
	Epochs      int
	TargetScale float64
	Seed        int64
}

func (c CNNConfig) norm() CNNConfig {
	if c.Filters == 0 {
		c.Filters = 24
	}
	if c.Width == 0 {
		c.Width = 3
	}
	if c.Out == 0 {
		c.Out = 1
	}
	if c.LR == 0 {
		c.LR = 0.004
	}
	if c.Epochs == 0 {
		c.Epochs = 40
	}
	if c.TargetScale == 0 {
		c.TargetScale = 10
	}
	return c
}

// CNN is a one-layer convolutional network over one-hot token sequences
// with ReLU, global max pooling, and a linear head. One-hot input turns
// convolution into per-position weight-row lookups.
type CNN struct {
	cfg    CNNConfig
	params []float64
	// layout: W [F][Width][V], bF [F], Wo [F][Out], bo [Out]
	oW, oBF, oWo, oBo int
}

// NewCNN allocates a randomly initialized model.
func NewCNN(cfg CNNConfig) *CNN {
	cfg = cfg.norm()
	V, F, W, D := cfg.Vocab, cfg.Filters, cfg.Width, cfg.Out
	m := &CNN{cfg: cfg}
	m.oW = 0
	m.oBF = F * W * V
	m.oWo = m.oBF + F
	m.oBo = m.oWo + F*D
	m.params = make([]float64, m.oBo+D)
	rng := rand.New(rand.NewSource(cfg.Seed + 401))
	randInit(rng, m.params[:m.oBF], 0.3)
	randInit(rng, m.params[m.oWo:m.oBo], 0.3)
	return m
}

// forwardInto fills caller-provided buffers with pooled activations,
// winning positions, and outputs (len F, F, D respectively).
func (m *CNN) forwardInto(tokens []int, pooled []float64, argmax []int, y []float64) {
	F, W, V, D := m.cfg.Filters, m.cfg.Width, m.cfg.Vocab, m.cfg.Out
	p := m.params
	for f := 0; f < F; f++ {
		best := math.Inf(-1)
		bi := 0
		npos := len(tokens) - W + 1
		if npos < 1 {
			npos = 1
		}
		for pos := 0; pos < npos; pos++ {
			a := p[m.oBF+f]
			for d := 0; d < W; d++ {
				ti := pos + d
				if ti >= len(tokens) {
					break
				}
				a += p[m.oW+(f*W+d)*V+tokens[ti]]
			}
			if a < 0 {
				a = 0
			}
			if a > best {
				best = a
				bi = pos
			}
		}
		pooled[f] = best
		argmax[f] = bi
	}
	for d := 0; d < D; d++ {
		y[d] = p[m.oBo+d]
		for f := 0; f < F; f++ {
			y[d] += p[m.oWo+f*D+d] * pooled[f]
		}
	}
}

// forward returns pooled activations, winning positions, and outputs.
func (m *CNN) forward(tokens []int) (pooled []float64, argmax []int, y []float64) {
	pooled = make([]float64, m.cfg.Filters)
	argmax = make([]int, m.cfg.Filters)
	y = make([]float64, m.cfg.Out)
	m.forwardInto(tokens, pooled, argmax, y)
	return pooled, argmax, y
}

// Predict returns rescaled, clamped outputs.
func (m *CNN) Predict(tokens []int) []float64 {
	if len(tokens) == 0 {
		return make([]float64, m.cfg.Out)
	}
	_, _, y := m.forward(tokens)
	out := make([]float64, len(y))
	for i := range y {
		out[i] = y[i] * m.cfg.TargetScale
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

// TrainCNN trains the CNN on sequence samples.
func TrainCNN(samples []SeqSample, cfg CNNConfig) (*CNN, float64) {
	m := NewCNN(cfg)
	cfg = m.cfg
	F, W, V, D := cfg.Filters, cfg.Width, cfg.Vocab, cfg.Out
	opt := NewAdam(len(m.params), cfg.LR, 5)
	grads := make([]float64, len(m.params))
	pooled := make([]float64, F)
	argmax := make([]int, F)
	y := make([]float64, D)
	rng := rand.New(rand.NewSource(cfg.Seed + 402))
	last := math.Inf(1)
	for e := 0; e < cfg.Epochs; e++ {
		perm := rng.Perm(len(samples))
		total := 0.0
		for _, si := range perm {
			s := samples[si]
			if len(s.Tokens) == 0 {
				continue
			}
			m.forwardInto(s.Tokens, pooled, argmax, y)
			vek.Zero(grads)
			for d := 0; d < D; d++ {
				diff := y[d] - s.Target[d]/cfg.TargetScale
				total += 0.5 * diff * diff
				grads[m.oBo+d] += diff
				for f := 0; f < F; f++ {
					grads[m.oWo+f*D+d] += diff * pooled[f]
					if pooled[f] > 0 { // ReLU gate
						gpool := m.params[m.oWo+f*D+d] * diff
						grads[m.oBF+f] += gpool
						pos := argmax[f]
						for dd := 0; dd < W; dd++ {
							ti := pos + dd
							if ti >= len(s.Tokens) {
								break
							}
							grads[m.oW+(f*W+dd)*V+s.Tokens[ti]] += gpool
						}
					}
				}
			}
			opt.Step(m.params, grads)
		}
		last = total / float64(len(samples))
	}
	return m, last
}
