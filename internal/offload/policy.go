package offload

// policy is the runtime threshold controller. All three kinds share the
// state; the kind selects the adjustment rule.
type policy struct {
	cfg       PolicyConfig
	threshold int
}

func newPolicy(cfg PolicyConfig) *policy {
	return &policy{cfg: cfg, threshold: cfg.Initial}
}

// adjust applies the end-of-round rule from the three counters the
// SNIPPETS §1 simulator adjusts on. The classic rule — shared verbatim by
// the insight-seeded policy, so seeding is the only difference between
// them:
//
//   - any over-offloads mean the threshold admits more candidates than
//     the rule-insertion budget or table can take: raise it;
//   - otherwise drops mean the slow path is overloaded and more flows
//     should be offloaded: lower it.
//
// Over-offloads take priority: lowering the threshold while insertions
// are already saturated only lengthens the candidate queue (and wastes
// slots on ever-smaller flows) without moving a single extra packet to
// the fast path. The threshold always stays inside [Min,Max], and the
// fixed point — no over-offloads, no drops — leaves it untouched.
func (p *policy) adjust(offloads, overOffloads, drops int) {
	if p.cfg.Kind == PolicyStatic {
		return
	}
	switch {
	case overOffloads > 0:
		p.threshold += p.cfg.Step
	case drops > 0:
		p.threshold -= p.cfg.Step
	}
	if p.threshold < p.cfg.Min {
		p.threshold = p.cfg.Min
	}
	if p.threshold > p.cfg.Max {
		p.threshold = p.cfg.Max
	}
}
