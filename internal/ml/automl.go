package ml

import (
	"fmt"
	"math"
)

// This file implements the AutoML stand-in for TPOT (§5.1): a pipeline
// search over model families and hyperparameters scored by k-fold
// cross-validation. Like TPOT it supports regression and classification
// but not ranking ("AutoML solutions currently do not support ranking
// tasks", §5.7).

// AutoMLResult describes the selected pipeline.
type AutoMLResult struct {
	Pipeline string
	CVScore  float64 // mean CV MAE (regression) or error rate (classification)
}

type candidateReg struct {
	name string
	fit  func(X [][]float64, y []float64) Regressor
}

type candidateCls struct {
	name string
	fit  func(X [][]float64, labels []int) Classifier
}

func regCandidates(seed int64) []candidateReg {
	return []candidateReg{
		{"ridge(0.1)", func(X [][]float64, y []float64) Regressor {
			r, err := FitRidge(X, y, 0.1)
			if err != nil {
				return constReg(meanOf(y))
			}
			return r
		}},
		{"ridge(10)", func(X [][]float64, y []float64) Regressor {
			r, err := FitRidge(X, y, 10)
			if err != nil {
				return constReg(meanOf(y))
			}
			return r
		}},
		{"knn(3)", func(X [][]float64, y []float64) Regressor { return FitKNNRegressor(X, y, 3) }},
		{"knn(7)", func(X [][]float64, y []float64) Regressor { return FitKNNRegressor(X, y, 7) }},
		{"tree(6)", func(X [][]float64, y []float64) Regressor {
			return FitTree(X, y, TreeConfig{MaxDepth: 6})
		}},
		{"forest(40)", func(X [][]float64, y []float64) Regressor {
			return FitForest(X, y, ForestConfig{Trees: 40, Seed: seed})
		}},
		{"forest(80,deep)", func(X [][]float64, y []float64) Regressor {
			return FitForest(X, y, ForestConfig{Trees: 80, MaxDepth: 12, Seed: seed})
		}},
		{"gbdt(60)", func(X [][]float64, y []float64) Regressor {
			return FitGBDT(X, y, GBDTConfig{Trees: 60, MaxDepth: 3, Seed: seed})
		}},
		{"gbdt(120,slow)", func(X [][]float64, y []float64) Regressor {
			return FitGBDT(X, y, GBDTConfig{Trees: 120, MaxDepth: 4, LR: 0.05, Seed: seed})
		}},
	}
}

func clsCandidates(seed int64) []candidateCls {
	return []candidateCls{
		{"knn(1)", func(X [][]float64, l []int) Classifier { return FitKNNClassifier(X, l, 1) }},
		{"knn(5)", func(X [][]float64, l []int) Classifier { return FitKNNClassifier(X, l, 5) }},
		{"tree(8)", func(X [][]float64, l []int) Classifier {
			return FitTreeClassifier(X, l, TreeConfig{MaxDepth: 8})
		}},
		{"svm", func(X [][]float64, l []int) Classifier {
			return FitSVM(X, l, SVMConfig{Seed: seed})
		}},
		{"gbdt(40)", func(X [][]float64, l []int) Classifier {
			return FitGBDTClassifier(X, l, GBDTConfig{Trees: 40, MaxDepth: 3, Seed: seed})
		}},
	}
}

type constReg float64

func (c constReg) Predict([]float64) float64 { return float64(c) }

func meanOf(y []float64) float64 {
	var s float64
	for _, v := range y {
		s += v
	}
	if len(y) == 0 {
		return 0
	}
	return s / float64(len(y))
}

// foldBounds returns [start, end) of fold f of k over n items.
func foldBounds(n, k, f int) (int, int) {
	size := (n + k - 1) / k
	s := f * size
	e := s + size
	if e > n {
		e = n
	}
	return s, e
}

// AutoMLRegressor cross-validates all candidate pipelines and refits the
// winner on the full data.
func AutoMLRegressor(X [][]float64, y []float64, folds int, seed int64) (Regressor, AutoMLResult, error) {
	if len(X) < folds || folds < 2 {
		return nil, AutoMLResult{}, fmt.Errorf("ml: need >= %d samples for %d-fold CV", folds, folds)
	}
	best := AutoMLResult{CVScore: math.Inf(1)}
	var bestFit func(X [][]float64, y []float64) Regressor
	for _, cand := range regCandidates(seed) {
		var errSum float64
		var count int
		for f := 0; f < folds; f++ {
			s, e := foldBounds(len(X), folds, f)
			if s >= e {
				continue
			}
			var trX [][]float64
			var trY []float64
			for i := range X {
				if i < s || i >= e {
					trX = append(trX, X[i])
					trY = append(trY, y[i])
				}
			}
			model := cand.fit(trX, trY)
			for i := s; i < e; i++ {
				errSum += math.Abs(model.Predict(X[i]) - y[i])
				count++
			}
		}
		score := errSum / float64(count)
		if score < best.CVScore {
			best = AutoMLResult{Pipeline: cand.name, CVScore: score}
			bestFit = cand.fit
		}
	}
	return bestFit(X, y), best, nil
}

// AutoMLClassifier cross-validates candidate classifiers and refits the
// winner.
func AutoMLClassifier(X [][]float64, labels []int, folds int, seed int64) (Classifier, AutoMLResult, error) {
	if len(X) < folds || folds < 2 {
		return nil, AutoMLResult{}, fmt.Errorf("ml: need >= %d samples for %d-fold CV", folds, folds)
	}
	best := AutoMLResult{CVScore: math.Inf(1)}
	var bestFit func(X [][]float64, labels []int) Classifier
	for _, cand := range clsCandidates(seed) {
		var wrong, count int
		for f := 0; f < folds; f++ {
			s, e := foldBounds(len(X), folds, f)
			if s >= e {
				continue
			}
			var trX [][]float64
			var trL []int
			for i := range X {
				if i < s || i >= e {
					trX = append(trX, X[i])
					trL = append(trL, labels[i])
				}
			}
			model := cand.fit(trX, trL)
			for i := s; i < e; i++ {
				if model.PredictClass(X[i]) != labels[i] {
					wrong++
				}
				count++
			}
		}
		score := float64(wrong) / float64(count)
		if score < best.CVScore {
			best = AutoMLResult{Pipeline: cand.name, CVScore: score}
			bestFit = cand.fit
		}
	}
	return bestFit(X, labels), best, nil
}
