package interp

import (
	"testing"

	"clara/internal/lang"
	"clara/internal/synth"
	"clara/internal/traffic"
)

// TestInterpreterInvariantsOnSynthCorpus executes random generated NFs and
// checks interpreter invariants: bounded loops terminate within fuel,
// every packet receives a disposition, and execution is deterministic
// across identical machines in both map modes.
func TestInterpreterInvariantsOnSynthCorpus(t *testing.T) {
	for seed := int64(600); seed < 625; seed++ {
		mod, src, err := synth.GenerateModule(synth.Config{
			Profile: synth.UniformProfile(), Seed: seed, StateBias: 2,
		}, lang.Compile)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []MapMode{HostMap, NICMap} {
			m1, err := New(mod, Config{Mode: mode, Seed: 9})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			m2, err := New(mod, Config{Mode: mode, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			gen1, _ := traffic.NewGenerator(traffic.MediumMix)
			gen2, _ := traffic.NewGenerator(traffic.MediumMix)
			for i := 0; i < 80; i++ {
				p1 := gen1.Next()
				p2 := gen2.Next()
				if err := m1.RunPacket(&p1); err != nil {
					t.Fatalf("seed %d mode %d pkt %d: %v\n%s", seed, mode, i, err, src)
				}
				if err := m2.RunPacket(&p2); err != nil {
					t.Fatal(err)
				}
				if p1.OutPort == -2 {
					t.Fatalf("seed %d: packet %d left undisposed", seed, i)
				}
				if p1.OutPort != p2.OutPort || p1.SrcIP != p2.SrcIP || p1.DstPort != p2.DstPort {
					t.Fatalf("seed %d mode %d: nondeterministic execution at packet %d", seed, mode, i)
				}
			}
		}
	}
}

// TestHostAndNICModesAgreeOnStatelessNFs: for programs without maps, host
// and NIC semantics are identical, so dispositions must match exactly.
func TestHostAndNICModesAgreeOnStatelessNFs(t *testing.T) {
	src := `
global u32 seen[1024];
void handle() {
	u32 b = pkt_ip_src() & 1023;
	seen[b] += 1;
	if ((pkt_tcp_flags() & 0x04) != 0) { pkt_drop(); return; }
	pkt_set_ip_ttl(pkt_ip_ttl() - 1);
	pkt_send(u32(pkt_ip_dst() & 3));
}
`
	mod, err := lang.Compile("agnostic", src)
	if err != nil {
		t.Fatal(err)
	}
	host, err := New(mod, Config{Mode: HostMap})
	if err != nil {
		t.Fatal(err)
	}
	nic, err := New(mod, Config{Mode: NICMap})
	if err != nil {
		t.Fatal(err)
	}
	genH, _ := traffic.NewGenerator(traffic.SmallFlows)
	genN, _ := traffic.NewGenerator(traffic.SmallFlows)
	for i := 0; i < 400; i++ {
		ph := genH.Next()
		pn := genN.Next()
		if err := host.RunPacket(&ph); err != nil {
			t.Fatal(err)
		}
		if err := nic.RunPacket(&pn); err != nil {
			t.Fatal(err)
		}
		if ph.OutPort != pn.OutPort || ph.TTL != pn.TTL {
			t.Fatalf("packet %d: host %d/%d vs nic %d/%d", i, ph.OutPort, ph.TTL, pn.OutPort, pn.TTL)
		}
	}
}

// TestStepsAccounting: the interpreter's step counter grows monotonically
// and roughly linearly with packets processed.
func TestStepsAccounting(t *testing.T) {
	mod, err := lang.Compile("steps", `
global u32 n;
void handle() { n += 1; pkt_send(0); }
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(mod, Config{})
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := traffic.NewGenerator(traffic.MediumMix)
	p := gen.Next()
	if err := m.RunPacket(&p); err != nil {
		t.Fatal(err)
	}
	one := m.Steps
	if one == 0 {
		t.Fatal("no steps counted")
	}
	for i := 0; i < 9; i++ {
		q := gen.Next()
		if err := m.RunPacket(&q); err != nil {
			t.Fatal(err)
		}
	}
	if m.Steps != one*10 {
		t.Errorf("steps %d, want %d (straight-line handler)", m.Steps, one*10)
	}
}
