package experiments

import (
	"fmt"

	"clara/internal/click"
	"clara/internal/ir"
	"clara/internal/isa"
	"clara/internal/lang"
	"clara/internal/nicsim"
	"clara/internal/stats"
	"clara/internal/synth"
	"clara/internal/traffic"
)

// Figure1 reproduces the motivation experiment: five NFs, each with two to
// four versions sharing the same core logic, whose latency varies by up to
// an order of magnitude with porting decisions and workloads.
func Figure1(ctx *Context) (*Table, error) {
	params := ctx.Cfg.Params
	cores := 16
	n := ctx.packets(2500)

	type variant struct {
		nf    string
		label string
		make  func() *nicsim.NF
		wl    traffic.Spec
		cores int // 0 = the default core count
	}
	wlDefault := traffic.MediumMix

	dpiBig := wlDefault
	dpiBig.PktSize, dpiBig.PayloadB = 1024, 800
	dpiSmall := wlDefault
	dpiSmall.PktSize, dpiSmall.PayloadB = 128, 64
	fwSmallFlows := traffic.SmallFlows
	hhSlow := wlDefault
	hhSlow.RatePps = 1e6
	hhFast := wlDefault

	variants := []variant{
		{"NAT", "csum-engine", func() *nicsim.NF {
			return elementNF("mazunat", func(nf *nicsim.NF) { nf.Accel.CsumEngine = true })
		}, wlDefault, 0},
		{"NAT", "csum-software", func() *nicsim.NF { return elementNF("mazunat", nil) }, wlDefault, 0},

		{"DPI", "small-pkts", func() *nicsim.NF { return elementNF("dpi", nil) }, dpiSmall, 0},
		{"DPI", "large-pkts", func() *nicsim.NF { return elementNF("dpi", nil) }, dpiBig, 0},

		{"FW", "state-IMEM", func() *nicsim.NF {
			return elementNF("firewall", func(nf *nicsim.NF) {
				nf.Placement = nicsim.Placement{"deny": isa.IMEM, "flows": isa.IMEM,
					"fw_pass": isa.CLS, "fw_deny": isa.CLS, "fw_newflow": isa.CLS}
			})
		}, wlDefault, 0},
		{"FW", "state-EMEM", func() *nicsim.NF { return elementNF("firewall", nil) }, wlDefault, 0},
		{"FW", "EMEM-manyflows", func() *nicsim.NF { return elementNF("firewall", nil) }, fwSmallFlows, 0},

		{"LPM", "flow-cache", func() *nicsim.NF {
			return elementNF("iplookup_lpm", func(nf *nicsim.NF) {
				nf.Accel.LPMEngine = true
				nf.Accel.FlowCache = true
				nf.Accel.CsumEngine = true
			})
		}, wlDefault, 0},
		{"LPM", "engine-only", func() *nicsim.NF {
			return elementNF("iplookup_lpm", func(nf *nicsim.NF) {
				nf.Accel.LPMEngine = true
				nf.Accel.CsumEngine = true
			})
		}, wlDefault, 0},
		{"LPM", "software-trie", func() *nicsim.NF { return elementNF("iplookup", nil) }, wlDefault, 0},

		{"HH", "low-rate", func() *nicsim.NF { return elementNF("cmsketch", nil) }, hhSlow, 8},
		{"HH", "line-rate", func() *nicsim.NF { return elementNF("cmsketch", nil) }, hhFast, 60},
	}

	t := &Table{
		ID:     "figure1",
		Title:  "Performance variability of five NFs across porting strategies/workloads",
		Header: []string{"NF", "variant", "latency(us)", "normalized"},
	}
	lat := map[string][]float64{}
	labels := map[string][]string{}
	order := []string{"NAT", "DPI", "FW", "LPM", "HH"}
	for _, v := range variants {
		c := cores
		if v.cores != 0 {
			c = v.cores
		}
		r, _, err := runNF(params, v.make(), v.wl, n, c)
		if err != nil {
			return nil, fmt.Errorf("figure1 %s/%s: %w", v.nf, v.label, err)
		}
		lat[v.nf] = append(lat[v.nf], r.AvgLatencyUs)
		labels[v.nf] = append(labels[v.nf], v.label)
	}
	var maxRatio float64
	for _, nf := range order {
		best := lat[nf][0]
		for _, l := range lat[nf] {
			if l < best {
				best = l
			}
		}
		for i, l := range lat[nf] {
			norm := l / best
			if norm > maxRatio {
				maxRatio = norm
			}
			t.AddRow(nf, labels[nf][i], f2(l), f2(norm)+"x")
		}
	}
	t.Notef("max variability %.1fx (paper: up to 13.8x)", maxRatio)
	return t, nil
}

// Table1 reproduces the data-synthesis fidelity measurement: distribution
// distances between real-corpus and synthesized instruction distributions,
// for the corpus-guided synthesizer (Clara) vs the unguided baseline.
func Table1(ctx *Context) (*Table, error) {
	mods, err := click.Modules(click.Table2Order)
	if err != nil {
		return nil, err
	}
	prof := synth.ProfileFromModules(mods)
	n := 160
	probe := 60
	if ctx.Cfg.Quick {
		n = 30
		probe = 15
	}
	prof, err = synth.Calibrate(prof, probe, ctx.Cfg.Seed+7777, lang.Compile)
	if err != nil {
		return nil, err
	}
	gen := func(p synth.Profile, seedOff int64) ([]*ir.Module, error) {
		var out []*ir.Module
		for i := 0; i < n; i++ {
			m, _, err := synth.GenerateModule(synth.Config{Profile: p, Seed: ctx.Cfg.Seed + seedOff + int64(i)}, lang.Compile)
			if err != nil {
				return nil, err
			}
			out = append(out, m)
		}
		return out, nil
	}
	guided, err := gen(prof, 50000)
	if err != nil {
		return nil, err
	}
	baseline, err := gen(synth.UniformProfile(), 90000)
	if err != nil {
		return nil, err
	}

	real := ir.OpcodeDistribution(mods)
	distG := ir.OpcodeDistribution(guided)
	distB := ir.OpcodeDistribution(baseline)

	t := &Table{
		ID:     "table1",
		Title:  "Synthesizer fidelity: instruction-distribution distance to the real corpus",
		Header: []string{"metric", "Clara", "baseline", "paper Clara", "paper baseline"},
	}
	type metric struct {
		name   string
		fn     func(p, q []float64) (float64, error)
		pc, pb string
	}
	metrics := []metric{
		{"Jensen-Shannon divergence", stats.JensenShannon, "0.0303", "0.1010"},
		{"Renyi divergence", stats.RenyiDefault, "0.1202", "0.4061"},
		{"Bhattacharyya distance", stats.Bhattacharyya, "0.0354", "0.1263"},
		{"Cosine distance", stats.Cosine, "0.0267", "0.1164"},
		{"Euclidean distance", stats.Euclidean, "0.0611", "0.1383"},
		{"Variational distance", stats.Variational, "0.3070", "0.6713"},
	}
	better := 0
	for _, m := range metrics {
		pv, gv := ir.AlignDistributions(real, distG)
		dg, err := m.fn(pv, gv)
		if err != nil {
			return nil, err
		}
		pv2, bv := ir.AlignDistributions(real, distB)
		db, err := m.fn(pv2, bv)
		if err != nil {
			return nil, err
		}
		if dg < db {
			better++
		}
		t.AddRow(m.name, f3(dg), f3(db), m.pc, m.pb)
	}
	t.Notef("guided synthesizer closer on %d/%d metrics (paper: 6/6)", better, len(metrics))
	return t, nil
}

// Table2 reproduces the element inventory: LoC, statefulness, compiled
// instruction mix, API call sites, and the insight classes that apply.
func Table2(ctx *Context) (*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "Evaluated Click elements",
		Header: []string{"element", "LoC", "instr", "state", "mem", "API", "insights"},
	}
	for _, name := range click.Table2Order {
		e := click.Get(name)
		m, err := e.Module()
		if err != nil {
			return nil, err
		}
		st := ir.ModuleStats(m)
		stateful := " "
		if st.Stateful {
			stateful = "y"
		}
		t.AddRow(name,
			fmt.Sprintf("%d", e.LoC()),
			fmt.Sprintf("%d", st.Compute+st.LocalMem),
			stateful,
			fmt.Sprintf("%d", st.StateMem),
			fmt.Sprintf("%d", st.APICalls),
			joinStrings(e.Insights, ","))
	}
	return t, nil
}

func joinStrings(xs []string, sep string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += sep
		}
		out += x
	}
	return out
}
