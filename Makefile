GO ?= go

.PHONY: build test race vet fmt-check check serve-check cluster-check simulate-check interp-check fuzz bench bench-smoke bench-compare bench-fleet update-golden

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-checked run of every package; the fleet tests drive 17 NFs x 3
# workloads across an 8-worker pool under the race detector.
race:
	$(GO) test -race ./...

# vet runs go vet plus claravet, the project's determinism analyzer
# (time.Now / global rand / map-range / stray float reductions in the
# packages that promise bit-identical output; see cmd/claravet).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/claravet

# fmt-check fails listing any file gofmt would rewrite.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# serve-check exercises the HTTP serving layer end to end under the
# race detector: concurrent requests, backpressure, cancellation,
# panic isolation, graceful shutdown.
serve-check:
	$(GO) test -race ./internal/server/...

# cluster-check exercises the coordinator/worker layer end to end under
# the race detector: content-hash routing, worker death mid-batch with
# single retry, probe-driven rejoin, merged metrics.
cluster-check:
	$(GO) test -race ./internal/cluster/...

# simulate-check exercises the offload controller under the race
# detector — golden trajectories, invariants, bit-determinism across
# GOMAXPROCS — and then runs `clara -simulate` end to end once per
# policy (no training: the CLI's nominal-prediction path).
simulate-check:
	$(GO) test -race ./internal/offload/ ./cmd/clara/
	$(GO) run ./cmd/clara -simulate -scenario synflood -policy insight -rounds 24 > /dev/null
	$(GO) run ./cmd/clara -simulate -scenario zipf -policy dynamic -rounds 24 > /dev/null
	$(GO) run ./cmd/clara -simulate -scenario elephantmice -policy static -rounds 24 > /dev/null

# interp-check runs the compiled-backend differential suite under the
# race detector: every library element x every traffic spec x both
# observability flavors, plus the fuel-starvation and HostMap sweeps,
# must produce byte-identical transcripts from both backends.
interp-check:
	$(GO) test -race -run 'TestCompiledBackendEquivalence|TestProfileLoopZeroAllocs' ./internal/interp/ ./internal/core/

# check is the PR gate: static gates first, then build, plain tests,
# then the race passes, then a quick run of the benchmark harness.
check: vet fmt-check build test race serve-check cluster-check simulate-check interp-check bench-smoke

# bench regenerates the committed BENCH_PR10.json: everything from the
# PR9 report (cold/warm start, train throughput, predict latency,
# quantized drift, fleet jobs/sec, convergence grid, cluster scaling)
# plus the host-profiling microbench (profile_us_per_packet,
# compiled_speedup). Earlier BENCH_PR*.json files are kept for cross-PR
# comparison.
bench:
	$(GO) run ./cmd/perfbench -out BENCH_PR10.json

# bench-smoke runs the same harness with shrunken workloads to verify
# it end to end (CI); it does not overwrite the committed numbers.
bench-smoke:
	$(GO) run ./cmd/perfbench -quick -out /tmp/clara-bench-smoke.json

# bench-compare diffs the two newest committed BENCH_PR*.json files
# field by field. Fail-soft: numbers from different machines are not
# comparable, so the diff informs rather than gates.
bench-compare:
	@files=$$(ls BENCH_PR*.json 2>/dev/null | sort -t_ -k2.3n | tail -2); \
	set -- $$files; \
	if [ $$# -lt 2 ]; then echo "bench-compare: need two BENCH_PR*.json files, have $$#"; exit 0; fi; \
	echo "bench-compare: $$1 -> $$2"; \
	$(GO) run ./cmd/perfbench/compare "$$1" "$$2" || true

# Short smoke runs of every fuzz target (seed corpus always runs under
# plain `go test`; this adds a bounded mutation pass).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=20s ./internal/lang/
	$(GO) test -run=^$$ -fuzz=FuzzCompile$$ -fuzztime=20s ./internal/lang/
	$(GO) test -run=^$$ -fuzz=FuzzCompileNF -fuzztime=20s .
	$(GO) test -run=^$$ -fuzz=FuzzLint -fuzztime=20s ./internal/analysis/
	$(GO) test -run=^$$ -fuzz=FuzzTaint -fuzztime=20s ./internal/analysis/
	$(GO) test -run=^$$ -fuzz=FuzzSimulate -fuzztime=10s ./internal/offload/
	$(GO) test -run=^$$ -fuzz=FuzzCompiledExec -fuzztime=20s ./internal/interp/

bench-fleet:
	$(GO) test -run=^$$ -bench=BenchmarkFleetAnalyze -benchtime=5x .

# Regenerate the Insights.Report, lint, simulation-trajectory, and
# taint/frequency state-profile golden files after intentional
# formatting/simulator/analysis changes.
update-golden:
	$(GO) test ./internal/core/ -run TestReportGolden -update
	$(GO) test ./internal/analysis/ -run TestLintGolden -update
	$(GO) test ./internal/offload/ -run TestSimulateGolden -update
	$(GO) test ./internal/analysis/ -run TestStateProfileGoldens -update
